"""Cursors and prepared statements: the result side of the Session API.

A :class:`Cursor` is the one handle a caller holds over a running (or
completed) statement, whichever backend executes it:

* ``kind == "stream"``       — a continuous StreamEngine query; results
  accumulate as elements are pushed.
* ``kind == "federated"``    — a continuous query partitioned across the
  in-network sensor engine and the stream backend: the stream-side
  residual behaves exactly like a ``"stream"`` cursor, and ``close()``
  additionally stops the query's in-network fragment deployments
  (``federated_plan`` / ``fragments`` expose the partitioning).
* ``kind == "distributed"``  — a continuous query with operators placed
  across simulated LAN nodes; pump the session's simulator to deliver.
* ``kind == "batch"``        — a one-shot evaluation; rows were
  materialized when the cursor was created.
* ``kind == "view"``         — a CREATE VIEW registration; no rows.

A :class:`PreparedStatement` is parsed, analyzed and planned **once**,
with ``:name`` placeholders left in the plan as
:class:`~repro.sql.expressions.Parameter` slots. Batch executions rebind
the slots and re-run the same plan — the compiled closures the batch
evaluator memoizes on plan nodes are reused across executions, so only
the first execution pays compilation. Continuous executions (stream /
distributed) bake the bindings in as literals instead: a running
pipeline must own immutable parameter values, or a later ``execute()``
would mutate a live query's predicate.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator

from repro.data.schema import Schema
from repro.data.streams import StreamElement
from repro.data.tuples import Row
from repro.errors import QueryError, SessionClosedError
from repro.sql.ast import (
    CreateView,
    OrderItem,
    SelectItem,
    SelectQuery,
)
from repro.sql.analyzer import AnalyzedQuery, AnalyzedRecursive
from repro.sql.expressions import collect_parameters, substitute_parameters


class Subscription:
    """One callback registered on a :class:`Cursor`.

    Every subscription is queue-backed: the emit path only appends to a
    deque — user code never runs inside a shard's (or engine's) emit
    stack. ``mode="direct"`` drains the queue immediately after each
    delivery, preserving the classic inline-callback behaviour;
    ``mode="queue"`` leaves draining to the consumer
    (:meth:`drain`, or :meth:`Cursor.drain` for all subscriptions), so
    a slow or raising callback can never stall the producer.
    """

    __slots__ = ("callback", "elements", "mode", "_pending", "_draining")

    def __init__(self, callback: Callable, *, elements: bool, mode: str):
        if mode not in ("direct", "queue"):
            raise QueryError(f"unknown subscription mode {mode!r}; expected 'direct' or 'queue'")
        self.callback = callback
        self.elements = elements
        self.mode = mode
        self._pending: deque[StreamElement] = deque()
        self._draining = False

    @property
    def pending(self) -> int:
        """Queued deliveries not yet drained."""
        return len(self._pending)

    def _enqueue(self, element: StreamElement) -> None:
        self._pending.append(element)
        if self.mode == "direct":
            self.drain()

    def drain(self, limit: int | None = None) -> int:
        """Deliver up to ``limit`` queued items (all, by default) to the
        callback, in emission order; returns how many were delivered.

        Delivery is at-least-once: callback exceptions surface here —
        in the consumer's frame, not the producer's — and the failing
        item stays at the head of the queue (an item is dequeued only
        *after* its callback returns), so neither it nor anything
        behind it is lost; the next ``drain()`` retries it. Reentrant
        drains (a callback that triggers another delivery) are a no-op
        rather than a double delivery.
        """
        if self._draining:
            return 0
        self._draining = True
        delivered = 0
        pending = self._pending
        try:
            while pending and (limit is None or delivered < limit):
                element = pending[0]
                self.callback(element if self.elements else element.row)
                pending.popleft()
                delivered += 1
        finally:
            self._draining = False
        return delivered


class Cursor:
    """Handle over one executed statement. Iterate it, poll
    :meth:`results` / :meth:`latest_batch`, or :meth:`subscribe` a
    callback; ``close()`` (or the ``with`` statement) stops a continuous
    query and is always idempotent."""

    def __init__(
        self,
        session,
        sql: str,
        kind: str,
        schema: Schema | None,
        *,
        handle=None,
        query=None,
        rows: list[Row] | None = None,
        view_name: str | None = None,
    ):
        self.session = session
        self.sql = sql
        self.kind = kind
        self._schema = schema
        self._handle = handle  # stream: QueryHandle
        self._query = query  # distributed: DistributedQuery
        self._rows = rows  # batch: materialized rows
        self.view_name = view_name
        self._closed = False
        self._subscribers: list[Subscription] = []
        self._tapped = False
        #: Federated execution state (set by FederatedBackend via
        #: _promote_federated; empty/None everywhere else).
        self.federated_plan = None
        self._deployments: list = []

    # -- constructors (used by Session) --------------------------------
    @classmethod
    def _stream(cls, session, sql: str, handle) -> "Cursor":
        return cls(session, sql, "stream", handle.plan.schema, handle=handle)

    @classmethod
    def _distributed(cls, session, sql: str, query) -> "Cursor":
        return cls(session, sql, "distributed", query.plan.schema, query=query)

    @classmethod
    def _materialized(cls, session, rows: list[Row], schema: Schema, sql: str) -> "Cursor":
        return cls(session, sql, "batch", schema, rows=list(rows))

    @classmethod
    def _view(cls, session, sql: str, name: str, schema: Schema) -> "Cursor":
        return cls(session, sql, "view", schema, view_name=name, rows=[])

    def _promote_federated(self, federated_plan, deployments: list) -> None:
        """Turn a delegate stream cursor into the handle of a federated
        execution: same sink/results plumbing, plus ownership of the
        in-network fragment deployments (stopped on :meth:`close`)."""
        self.kind = "federated"
        self.federated_plan = federated_plan
        self._deployments = list(deployments)

    @property
    def fragments(self) -> list:
        """The in-network fragment deployments this cursor owns
        (empty for non-federated cursors)."""
        return list(self._deployments)

    # -- results -------------------------------------------------------
    @property
    def schema(self) -> Schema | None:
        """Output schema of the statement (None for statements without one)."""
        return self._schema

    @property
    def description(self) -> list[str] | None:
        """Output column names (DB-API flavoured convenience)."""
        return None if self._schema is None else list(self._schema.names)

    def results(self) -> list[Row]:
        """Every result row produced so far (all rows, for one-shots)."""
        if self._handle is not None:
            return list(self._handle.results)
        if self._query is not None:
            return list(self._query.results)
        return list(self._rows or [])

    def latest_batch(self) -> list[Row]:
        """Rows since the last punctuation boundary (one-shots: all rows)."""
        if self._handle is not None:
            return self._handle.latest_batch()
        if self._query is not None:
            sink = self._query.sink
            watermark = (
                sink.punctuations[-1].watermark if sink.punctuations else float("-inf")
            )
            return [e.row for e in sink.elements if e.timestamp >= watermark]
        return self.results()

    def __iter__(self) -> Iterator[Row]:
        return iter(self.results())

    def __len__(self) -> int:
        return len(self.results())

    # -- subscriptions -------------------------------------------------
    def subscribe(
        self,
        callback: Callable,
        *,
        elements: bool = False,
        mode: str = "direct",
    ) -> Subscription:
        """Invoke ``callback`` for every result row as it is emitted.

        ``elements=True`` delivers the full :class:`StreamElement`
        (row + timestamp) instead of the bare row. ``mode="queue"``
        defers delivery: emissions are buffered and the consumer drains
        them (:meth:`Subscription.drain` / :meth:`Cursor.drain`) at its
        own pace, so a slow callback never stalls the engine's — or a
        shard's — emit path. Every subscription (sharded merge cursors
        included) runs through the same queue internally; ``"direct"``
        simply drains inline after each delivery. On one-shot cursors
        the already-materialized rows are replayed (direct) or queued
        (queue) immediately. Returns the :class:`Subscription`.
        """
        subscription = Subscription(callback, elements=elements, mode=mode)
        self._subscribers.append(subscription)
        if self._rows is not None:
            # One-shot cursor: replay (direct) or enqueue (queue) the
            # materialized rows; the subscription stays registered so
            # Cursor.drain() reaches it like any other.
            for row in self._rows:
                subscription._enqueue(StreamElement(row, 0.0))
            return subscription
        self._install_tap()
        return subscription

    def drain(self, limit: int | None = None) -> int:
        """Drain every queue-mode subscription (see
        :meth:`Subscription.drain`); returns total deliveries."""
        return sum(
            subscription.drain(limit)
            for subscription in list(self._subscribers)
            if subscription.mode == "queue"
        )

    def _dispatch(self, element: StreamElement) -> None:
        for subscription in list(self._subscribers):
            subscription._enqueue(element)

    def _install_tap(self) -> None:
        if self._tapped:
            return
        sink = self._handle.sink if self._handle is not None else self._query.sink
        original_push = sink.push
        original_batch = getattr(sink, "push_batch", None)
        dispatch = self._dispatch

        def observing_push(item):
            original_push(item)
            if isinstance(item, StreamElement):
                dispatch(item)

        sink.push = observing_push  # type: ignore[method-assign]
        if original_batch is not None:
            # Batched emissions (push_many through a vectorized
            # pipeline) must reach subscribers too — producers cache
            # sink.push_batch at wiring time, so both entry points are
            # wrapped.
            def observing_push_batch(items):
                original_batch(items)
                for item in items:
                    if isinstance(item, StreamElement):
                        dispatch(item)

            sink.push_batch = observing_push_batch  # type: ignore[method-assign]
        self._tapped = True

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the query — the stream residual *and*, for federated
        cursors, every in-network fragment deployment (idempotent;
        results remain readable)."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._handle.stop()
        for deployment in self._deployments:
            deployment.stop()
        self.session._forget_cursor(self)

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Cursor {self.kind} {state} rows={len(self.results())}>"


class PreparedStatement:
    """A statement compiled once and executed many times. See the
    module docstring for the rebinding contract."""

    def __init__(self, session, sql: str, *, placement=None, engine=None):
        self.session = session
        self.sql = sql
        self._placement = placement
        self._invalidated = False
        # The same memoized front end as Session.query: a statement
        # prepared (or queried) twice reuses the cached parse, analysis,
        # plan and route — Parameter slots live in the shared analyzed
        # expressions, so rebinding works identically on a cached entry.
        entry = session._compile_statement(sql, placement=placement, engine=engine)
        if isinstance(entry.statement, CreateView):
            raise QueryError("CREATE VIEW cannot be prepared; run it directly", sql=sql)
        self._analyzed: AnalyzedQuery | AnalyzedRecursive = entry.analyzed
        self._plan = entry.plan
        self._route = entry.route
        self._params = collect_parameters(self._expressions())
        self._schema = self._plan.schema

    @property
    def parameters(self) -> list[str]:
        """Declared parameter names, sorted."""
        return sorted(self._params)

    @property
    def route(self) -> str:
        """Backend this statement executes on ("stream"/"batch"/"distributed")."""
        return self._route

    @property
    def closed(self) -> bool:
        """True once the owning session closed; execute() then raises."""
        return self._invalidated

    def _invalidate(self) -> None:
        """Called by ``Session.close``: the engines this statement was
        planned against are stopping, so any later execute() must fail
        loudly instead of running against them."""
        self._invalidated = True

    def execute(self, **params: Any) -> Cursor:
        """Bind ``:name`` placeholders and run, returning a Cursor."""
        if self._invalidated:
            raise SessionClosedError(
                "prepared statement is invalid: its session was closed"
            )
        self.session._ensure_open()
        missing = sorted(set(self._params) - set(params))
        unknown = sorted(set(params) - set(self._params))
        if missing or unknown:
            problems = []
            if missing:
                problems.append(f"missing parameters: {', '.join(missing)}")
            if unknown:
                problems.append(f"unknown parameters: {', '.join(unknown)}")
            raise QueryError("; ".join(problems), sql=self.sql)
        if self._route == "batch":
            return self._execute_batch(params)
        return self._execute_continuous(params)

    def _execute_batch(self, params: dict[str, Any]) -> Cursor:
        # Rebind the shared slots; the plan (and the compiled closures
        # memoized on its nodes) is reused as-is.
        for name, occurrences in self._params.items():
            for parameter in occurrences:
                parameter.bind(params[name])
        try:
            rows = self.session._evaluate(self._plan)
        finally:
            for occurrences in self._params.values():
                for parameter in occurrences:
                    parameter.unbind()
        return Cursor._materialized(self.session, rows, self._schema, self.sql)

    def _execute_continuous(self, params: dict[str, Any]) -> Cursor:
        analyzed = self._analyzed
        bound = _bind_query(analyzed.query, params) if params else analyzed.query
        rebound = AnalyzedQuery(
            query=bound,
            tables=analyzed.tables,
            output_schema=analyzed.output_schema,
            is_aggregate=analyzed.is_aggregate,
            scope=analyzed.scope,
        )
        with self.session._compiling(self.sql):
            plan = self.session.builder.build_select(rebound)
        return self.session._start(plan, self._route, self._placement, self.sql)

    def _expressions(self):
        if isinstance(self._analyzed, AnalyzedRecursive):
            queries = [
                self._analyzed.base.query,
                self._analyzed.step.query,
                self._analyzed.main.query,
            ]
        else:
            queries = [self._analyzed.query]
        return [expr for query in queries for expr in query.expressions()]

    def __repr__(self) -> str:
        names = ", ".join(self.parameters) or "-"
        return f"<PreparedStatement route={self._route} params=[{names}]>"


def _bind_query(query: SelectQuery, values: dict[str, Any]) -> SelectQuery:
    """A copy of ``query`` with parameters replaced by literal values."""
    sub = lambda e: substitute_parameters(e, values)  # noqa: E731
    return SelectQuery(
        items=tuple(SelectItem(sub(i.expr), i.alias) for i in query.items),
        tables=query.tables,
        where=sub(query.where) if query.where is not None else None,
        group_by=tuple(sub(e) for e in query.group_by),
        having=sub(query.having) if query.having is not None else None,
        order_by=tuple(OrderItem(sub(o.expr), o.ascending) for o in query.order_by),
        limit=query.limit,
        distinct=query.distinct,
        output=query.output,
    )
