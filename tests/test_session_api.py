"""End-to-end tests for the unified Session API (repro.api).

The headline suite runs the *same SQL text* through all three backends —
continuous stream, one-shot batch and distributed — and asserts the
identical result rows, which is the façade's core contract: routing is
an implementation detail behind ``session.query(text)``.
"""

from __future__ import annotations

import pytest

from repro.api import (
    PreparedStatement,
    SourceAdapter,
    StreamSource,
    TableSource,
    WrapperSource,
    connect,
)
from repro.data import DataType, Schema
from repro.errors import QueryError, SessionClosedError, SourceError
from repro.runtime import Simulator

READINGS = Schema.of(("room", DataType.STRING), ("temp", DataType.FLOAT))
MACHINES = Schema.of(("host", DataType.STRING), ("room", DataType.STRING))
EDGES = Schema.of(("src", DataType.STRING), ("dst", DataType.STRING))

READING_ROWS = [
    {"room": "lab1", "temp": 28.0},
    {"room": "lab2", "temp": 18.5},
    {"room": "lab1", "temp": 31.5},
    {"room": "lab3", "temp": 24.0},
    {"room": "lab2", "temp": 26.25},
]

FILTER_PROJECT_SQL = (
    "select r.room, r.temp * 1.8 + 32.0 as fahrenheit "
    "from Readings r where r.temp > 20.0 and r.room like 'lab%'"
)

EXPECTED = sorted(
    (r["room"], r["temp"] * 1.8 + 32.0)
    for r in READING_ROWS
    if r["temp"] > 20.0
)


def _result_keys(cursor):
    return sorted((row["r.room"], row["fahrenheit"]) for row in cursor.results())


# ---------------------------------------------------------------------------
# Same SQL text, three backends, identical rows
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["stream", "batch", "distributed"])
def test_same_sql_same_rows_across_backends(mode):
    if mode == "batch":
        with connect() as session:
            session.attach(TableSource("Readings", READINGS, READING_ROWS))
            cursor = session.query(FILTER_PROJECT_SQL)
            assert cursor.kind == "batch"
            assert _result_keys(cursor) == EXPECTED
    elif mode == "stream":
        with connect() as session:
            session.attach(StreamSource("Readings", READINGS, rate=1.0))
            with session.query(FILTER_PROJECT_SQL) as cursor:
                assert cursor.kind == "stream"
                for i, row in enumerate(READING_ROWS):
                    session.push("Readings", row, float(i))
                assert _result_keys(cursor) == EXPECTED
    else:
        simulator = Simulator(3)
        with connect(simulator=simulator, nodes=["coord", "w1", "w2"]) as session:
            session.attach(StreamSource("Readings", READINGS, rate=1.0))
            cursor = session.query(FILTER_PROJECT_SQL, placement="auto")
            assert cursor.kind == "distributed"
            for i, row in enumerate(READING_ROWS):
                session.push("Readings", row, float(i))
            simulator.run_for(2.0)  # deliver across simulated LAN links
            assert _result_keys(cursor) == EXPECTED


def test_stream_and_batch_join_agree():
    sql = (
        "select r.room, m.host from Readings r, Machines m "
        "where r.room = m.room and r.temp > 20.0"
    )
    machines = [{"host": "ws1", "room": "lab1"}, {"host": "ws2", "room": "lab2"}]

    with connect() as session:
        session.attach(TableSource("Readings", READINGS, READING_ROWS))
        session.attach(TableSource("Machines", MACHINES, machines))
        batch_rows = sorted(
            (row["r.room"], row["m.host"]) for row in session.query(sql).results()
        )

    with connect() as session:
        session.attach(StreamSource("Readings", READINGS, rate=1.0))
        session.attach(TableSource("Machines", MACHINES, machines))
        cursor = session.query(sql)
        assert cursor.kind == "stream"  # one stream scan forces continuous
        for i, row in enumerate(READING_ROWS):
            session.push("Readings", row, float(i))
        stream_rows = sorted((row["r.room"], row["m.host"]) for row in cursor.results())

    assert batch_rows == stream_rows
    assert batch_rows  # non-vacuous


def test_engine_override_forces_stream_on_tables():
    with connect() as session:
        session.attach(TableSource("Readings", READINGS, READING_ROWS))
        cursor = session.query(FILTER_PROJECT_SQL, engine="stream")
        # Stored tables replay into new continuous queries.
        assert cursor.kind == "stream"
        assert _result_keys(cursor) == EXPECTED
        with pytest.raises(QueryError):
            session.query(FILTER_PROJECT_SQL, engine="sharded")


def test_batch_route_requires_tables():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        with pytest.raises(QueryError):
            session.query(FILTER_PROJECT_SQL, engine="batch")


# ---------------------------------------------------------------------------
# Statement routing: views and recursion
# ---------------------------------------------------------------------------
def test_create_view_then_query_it():
    with connect() as session:
        session.attach(TableSource("Machines", MACHINES, [
            {"host": "ws1", "room": "lab1"},
            {"host": "ws2", "room": "lab2"},
        ]))
        created = session.query(
            "create view Lab1 as (select m.host from Machines m where m.room = 'lab1')"
        )
        assert created.kind == "view"
        assert created.view_name == "Lab1"
        assert created.results() == []
        rows = session.query("select v.host from Lab1 v").results()
        assert [row["v.host"] for row in rows] == ["ws1"]


def test_engine_placement_overrides_rejected_where_meaningless():
    with connect() as session:
        session.attach(TableSource("Edges", EDGES, [{"src": "a", "dst": "b"}]))
        recursive_sql = (
            "with recursive Reach(src, dst) as ("
            "  select e.src, e.dst from Edges e"
            "  union select r.src, e.dst from Reach r, Edges e where r.dst = e.src"
            ") select t.dst from Reach t"
        )
        with pytest.raises(QueryError, match="batch engine"):
            session.query(recursive_sql, engine="stream")
        with pytest.raises(QueryError, match="CREATE VIEW"):
            session.query(
                "create view V as (select e.src from Edges e)", engine="stream"
            )
        with pytest.raises(QueryError, match="distributed engine"):
            session.query(
                "select e.src from Edges e", engine="stream", placement="auto"
            )


def test_push_schema_mismatch_is_source_error():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        with pytest.raises(SourceError):
            session.push("Readings", {"room": "a"}, 1.0)  # missing column
        with pytest.raises(SourceError):
            session.push_many("Readings", [READING_ROWS[0]], [1.0, 2.0])


def test_recursive_query_routes_to_batch():
    with connect() as session:
        session.attach(TableSource("Edges", EDGES, [
            {"src": "a", "dst": "b"},
            {"src": "b", "dst": "c"},
            {"src": "c", "dst": "d"},
        ]))
        cursor = session.query(
            "with recursive Reach(src, dst) as ("
            "  select e.src, e.dst from Edges e"
            "  union"
            "  select r.src, e.dst from Reach r, Edges e where r.dst = e.src"
            ") select t.dst from Reach t where t.src = 'a'"
        )
        assert cursor.kind == "batch"
        assert sorted(row["t.dst"] for row in cursor) == ["b", "c", "d"]


# ---------------------------------------------------------------------------
# Prepared statements
# ---------------------------------------------------------------------------
def test_prepared_batch_rebinds_compiled_plan():
    with connect() as session:
        session.attach(TableSource("Readings", READINGS, READING_ROWS))
        statement = session.prepare(
            "select r.room from Readings r where r.temp > :floor and r.temp < :ceil"
        )
        assert isinstance(statement, PreparedStatement)
        assert statement.parameters == ["ceil", "floor"]
        assert statement.route == "batch"

        plan_before = statement._plan
        first = sorted(r["r.room"] for r in statement.execute(floor=20.0, ceil=30.0))
        second = sorted(r["r.room"] for r in statement.execute(floor=25.0, ceil=32.0))
        assert first == ["lab1", "lab2", "lab3"]
        assert second == ["lab1", "lab1", "lab2"]
        # The same plan object served both executions (compiled once).
        assert statement._plan is plan_before


def test_prepared_stream_executions_are_independent():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        statement = session.prepare(
            "select r.room from Readings r where r.temp > :limit"
        )
        assert statement.route == "stream"
        hot = statement.execute(limit=30.0)
        warm = statement.execute(limit=20.0)
        for i, row in enumerate(READING_ROWS):
            session.push("Readings", row, float(i))
        # Each running query keeps the binding it was started with.
        assert sorted(r["r.room"] for r in hot) == ["lab1"]
        assert sorted(r["r.room"] for r in warm) == ["lab1", "lab1", "lab2", "lab3"]


def test_prepared_parameter_validation():
    with connect() as session:
        session.attach(TableSource("Readings", READINGS, READING_ROWS))
        statement = session.prepare("select r.room from Readings r where r.temp > :limit")
        with pytest.raises(QueryError, match="missing parameters: limit"):
            statement.execute()
        with pytest.raises(QueryError, match="unknown parameters: bogus"):
            statement.execute(limit=1.0, bogus=2)


def test_query_params_shorthand():
    with connect() as session:
        session.attach(TableSource("Readings", READINGS, READING_ROWS))
        rows = session.query(
            "select r.room from Readings r where r.temp > :limit",
            params={"limit": 30.0},
        ).results()
        assert [row["r.room"] for row in rows] == ["lab1"]


# ---------------------------------------------------------------------------
# Sources: attach/detach symmetry and wrapper lifecycle
# ---------------------------------------------------------------------------
def test_attach_detach_symmetry_for_tables():
    with connect() as session:
        session.attach(TableSource("Readings", READINGS, READING_ROWS))
        assert session.catalog.has_source("Readings")
        assert len(session.table_rows("Readings")) == len(READING_ROWS)
        session.detach("Readings")
        assert not session.catalog.has_source("Readings")
        with pytest.raises(QueryError):
            session.query(FILTER_PROJECT_SQL)
        # Re-attach after detach works (symmetry).
        session.attach(TableSource("Readings", READINGS, READING_ROWS[:2]))
        assert len(session.table_rows("Readings")) == 2


def test_attach_conflicts_raise_source_error():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        with pytest.raises(SourceError):
            session.attach(StreamSource("Readings", READINGS))
        with pytest.raises(SourceError):
            session.detach("nope")


def test_wrapper_source_lifecycle_owned_by_session():
    produced = []

    def produce(now):
        produced.append(now)
        return [{"room": "lab1", "temp": 25.0 + now}]

    session = connect()
    adapter = session.attach(
        WrapperSource(name="Readings", schema=READINGS, produce=produce, period=1.0)
    )
    assert isinstance(adapter, SourceAdapter)
    cursor = session.query("select r.temp from Readings r")
    session.simulator.run_for(5.0)
    assert adapter.wrapper.running
    assert len(cursor.results()) >= 4
    session.close()
    assert not adapter.wrapper.running
    ticks = len(produced)
    session.simulator.run_for(5.0)
    assert len(produced) == ticks  # polling stopped with the session


def test_wrapper_double_stop_is_safe():
    session = connect()
    adapter = session.attach(
        WrapperSource(
            name="Readings", schema=READINGS, produce=lambda now: [], period=1.0
        )
    )
    adapter.wrapper.stop()  # explicit stop first
    session.close()  # close must not raise on the already-stopped wrapper


# ---------------------------------------------------------------------------
# Cursor behaviour
# ---------------------------------------------------------------------------
def test_cursor_subscribe_and_iteration():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        seen = []
        cursor = session.query("select r.room from Readings r where r.temp > 20.0")
        cursor.subscribe(lambda row: seen.append(row["r.room"]))
        for i, row in enumerate(READING_ROWS):
            session.push("Readings", row, float(i))
        assert seen == ["lab1", "lab1", "lab3", "lab2"]
        assert [row["r.room"] for row in cursor] == seen
        assert len(cursor) == 4
        assert cursor.description == ["r.room"]


def test_cursor_latest_batch_follows_punctuation():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        cursor = session.query("select r.room from Readings r")
        session.push("Readings", READING_ROWS[0], 1.0)
        session.push("Readings", READING_ROWS[1], 2.0)
        session.punctuate(2.0)
        session.push("Readings", READING_ROWS[2], 3.0)
        assert [row["r.room"] for row in cursor.latest_batch()] == ["lab2", "lab1"]


def test_cursor_close_is_idempotent_and_stops_routing():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        cursor = session.query("select r.room from Readings r")
        session.push("Readings", READING_ROWS[0], 1.0)
        cursor.close()
        cursor.close()  # double close: no raise
        session.push("Readings", READING_ROWS[2], 2.0)
        assert len(cursor.results()) == 1  # nothing routed after close
    # session.close after explicit cursor.close: also safe (idempotent stop)


def test_query_handle_context_manager_double_stop():
    from repro.stream.engine import StreamEngine
    from repro.catalog import Catalog
    from repro.plan import PlanBuilder

    catalog = Catalog()
    catalog.register_stream("Readings", READINGS, rate=1.0)
    engine = StreamEngine(catalog)
    plan = PlanBuilder(catalog).build_sql("select r.room from Readings r")
    with engine.execute(plan) as handle:
        engine.push("Readings", READING_ROWS[0], 1.0)
        handle.stop()  # explicit stop inside the with-block
        engine.stop(handle)  # and an engine-level double stop
    # __exit__ ran stop() a third time without raising
    assert handle.results[0]["r.room"] == "lab1"
    assert not engine.running_queries


# ---------------------------------------------------------------------------
# Error funnel
# ---------------------------------------------------------------------------
def test_parse_errors_carry_source_position():
    with connect() as session:
        with pytest.raises(QueryError) as excinfo:
            session.query("select r.room frum Readings r")
        assert excinfo.value.line == 1
        assert excinfo.value.column > 1
        assert "frum" in excinfo.value.sql


def test_analysis_and_catalog_errors_become_query_errors():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        with pytest.raises(QueryError):
            session.query("select r.nope from Readings r")
        with pytest.raises(QueryError):
            session.query("select x.a from NoSuchSource x")


def test_closed_session_raises_everywhere():
    session = connect()
    session.attach(StreamSource("Readings", READINGS))
    session.close()
    session.close()  # idempotent
    with pytest.raises(SessionClosedError):
        session.query("select r.room from Readings r")
    with pytest.raises(SessionClosedError):
        session.push("Readings", READING_ROWS[0], 1.0)
    with pytest.raises(SessionClosedError):
        session.prepare("select r.room from Readings r")
    with pytest.raises(SessionClosedError):
        session.attach(TableSource("T", MACHINES))


def test_unbound_parameters_rejected_at_compile_time():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        # Without bindings the statement must fail up front — never
        # start a pipeline that would raise mid-ingestion.
        with pytest.raises(QueryError, match="unbound parameters: limit"):
            session.query("select r.room from Readings r where r.temp > :limit")
        with pytest.raises(QueryError, match="unbound parameters"):
            session.query(
                "create view Hot as (select r.room from Readings r where r.temp > :x)"
            )
        # Ingestion on the source still works for everyone else.
        cursor = session.query("select r.room from Readings r")
        session.push("Readings", READING_ROWS[0], 1.0)
        assert len(cursor.results()) == 1


def test_table_detach_preserves_preexisting_tables():
    with connect() as session:
        # Someone else owns the table and its rows.
        session.catalog.register_table("Machines", MACHINES, cardinality=1)
        session.engine.load_table("Machines", [{"host": "ws1", "room": "lab1"}])
        session.attach(TableSource("Machines"))  # no-op adoption
        session.detach("Machines")
        assert session.catalog.has_source("Machines")
        assert len(session.table_rows("Machines")) == 1  # rows survive


def test_failed_detach_keeps_source_attached():
    class FlakySource:
        name = "Flaky"
        detach_calls = 0

        def attach(self, session):
            pass

        def detach(self, session):
            self.detach_calls += 1
            if self.detach_calls == 1:
                raise SourceError("transient failure")

    session = connect()
    adapter = session.attach(FlakySource())
    with pytest.raises(SourceError):
        session.detach("Flaky")
    assert session.attached() == ["Flaky"]  # still tracked for retry/close
    session.close()  # close retries the detach and must not raise
    assert adapter.detach_calls == 2


def test_output_to_display_routes_to_stream_even_over_tables():
    delivered = []
    session = connect(deliver=lambda display, element: delivered.append(display))
    session.catalog.register_display("wall", "lobby")
    session.attach(TableSource("Machines", MACHINES, [{"host": "ws1", "room": "lab1"}]))
    cursor = session.query("select m.host from Machines m output to display 'wall'")
    assert cursor.kind == "stream"  # batch would silently drop delivery
    session.punctuate(1.0)
    assert delivered == ["wall"]
    with pytest.raises(QueryError, match="OUTPUT TO DISPLAY"):
        session.query(
            "select m.host from Machines m output to display 'wall'", engine="batch"
        )
    session.close()


def test_punctuate_source_filter_reaches_distributed_ports():
    simulator = Simulator(7)
    with connect(simulator=simulator, nodes=["c", "w1", "w2"]) as session:
        session.attach(StreamSource("Readings", READINGS))
        session.attach(
            StreamSource(
                "Occupancy",
                Schema.of(("room", DataType.STRING), ("people", DataType.INT)),
            )
        )
        cursor = session.query(
            "select r.room, o.people from Readings r, Occupancy o "
            "where r.room = o.room",
            placement="auto",
        )
        session.punctuate(5.0, sources=["Readings"])
        simulator.run_for(1.0)
        sink = cursor._query.sink
        # Only the Readings port got the watermark; Occupancy's windows
        # stay open, matching StreamEngine.punctuate's filter.
        assert len(sink.punctuations) == 0  # join waits for both inputs
        session.punctuate(5.0)
        simulator.run_for(1.0)
        assert len(sink.punctuations) == 1


def test_push_and_push_many_stamp_identically():
    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        cursor = session.query("select r.room from Readings r")
        session.simulator.run_for(50.0)
        session.push("Readings", READING_ROWS[0])  # defaults to now
        session.push_many("Readings", [READING_ROWS[2]])  # must match
        stamps = {e.timestamp for e in cursor._handle.sink.elements}
        assert stamps == {50.0}


def test_push_many_accepts_generators_for_rows_and_timestamps():
    # Regression: generators were consumed by the stream engine before
    # the distributed forwarding (and len() on one raised mid-ingest).
    with connect(nodes=["pc1", "pc2"]) as session:
        session.attach(StreamSource("Readings", READINGS))
        cursor = session.query("select r.room from Readings r")
        distributed = session.query(
            "select r.temp from Readings r", placement="auto"
        )
        count = session.push_many(
            "Readings",
            (row for row in READING_ROWS[:3]),
            (float(i) for i in range(3)),
        )
        assert count == 3
        assert [e.timestamp for e in cursor._handle.sink.elements] == [0.0, 1.0, 2.0]
        session.simulator.run_for(5.0)
        session.punctuate(10.0)
        session.simulator.run_for(5.0)
        assert len(distributed.results()) == 3


def test_failed_attach_rolls_back_registrations():
    def broken_factory(engine, simulator):
        raise SourceError("factory exploded")

    with connect() as session:
        with pytest.raises(SourceError):
            session.attach(
                WrapperSource(name="Readings", schema=READINGS, factory=broken_factory)
            )
        # The partial catalog registration was rolled back: re-attach works.
        assert not session.catalog.has_source("Readings")
        assert session.attached() == []
        session.attach(StreamSource("Readings", READINGS))


def test_failed_attach_rollback_spares_user_started_wrapper():
    from repro.wrappers.base import CallbackWrapper

    with connect() as session:
        wrapper = CallbackWrapper(
            "Readings", session.engine, session.simulator, 1.0, lambda now: []
        )
        wrapper.start()  # the caller owns this wrapper's lifecycle
        # Attach fails up front (source not in catalog, no schema given);
        # rollback must not stop a wrapper the attach never started.
        with pytest.raises(SourceError):
            session.attach(WrapperSource(wrapper=wrapper))
        assert wrapper.running
        # A successful attach then transfers shutdown ownership.
        session.attach(WrapperSource(wrapper=wrapper, schema=READINGS))
        session.detach("Readings")
        assert not wrapper.running


def test_mediated_execution_stops_cursors():
    from repro.core import MediatedExecution

    with connect() as session:
        session.attach(StreamSource("Readings", READINGS))
        cursor = session.query("select r.room from Readings r")
        mediated = MediatedExecution([cursor])
        session.push("Readings", READING_ROWS[0], 1.0)
        assert len(mediated.results) == 1
        mediated.stop()
        assert cursor.closed
        session.push("Readings", READING_ROWS[2], 2.0)
        assert len(mediated.results) == 1  # nothing routed after stop


def test_prepare_rejects_engine_override_for_recursive():
    with connect() as session:
        session.attach(TableSource("Edges", EDGES, [{"src": "a", "dst": "b"}]))
        sql = (
            "with recursive Reach(src, dst) as ("
            "  select e.src, e.dst from Edges e"
            "  union select r.src, e.dst from Reach r, Edges e where r.dst = e.src"
            ") select t.dst from Reach t"
        )
        with pytest.raises(QueryError, match="batch engine"):
            session.prepare(sql, engine="stream")
        assert session.prepare(sql, engine="batch").route == "batch"


def test_push_unknown_source_is_source_error():
    with connect() as session:
        with pytest.raises(SourceError):
            session.push("Ghost", {"x": 1}, 0.0)
        with pytest.raises(SourceError):
            session.load("Ghost", [{"x": 1}])


# ---------------------------------------------------------------------------
# SmartCIS integration: the session owns the app's wrapper lifecycle
# ---------------------------------------------------------------------------
def test_smartcis_stop_stops_wrappers_and_punctuator():
    from repro import SmartCIS

    app = SmartCIS(seed=1, lab_count=2, desks_per_lab=2, server_count=1)
    app.start()
    app.simulator.run_for(6.0)
    assert app.wrappers and all(w.running for w in app.wrappers)
    app.stop()
    assert all(not w.running for w in app.wrappers)
    assert app.punctuator._task is None
    assert not app.stream_engine.running_queries
    app.stop()  # idempotent


def test_smartcis_query_facade_runs_sql_text():
    from repro import SmartCIS

    with SmartCIS(seed=2, lab_count=2, desks_per_lab=2, server_count=1) as app:
        app.start()
        cursor = app.query("select ms.host, ms.cpu from MachineState ms")
        app.simulator.run_for(12.0)
        hosts = {row["ms.host"] for row in cursor.results()}
        assert hosts  # machine wrapper feeds the session query
