"""The sensor network: topology, collection tree and message routing.

Motes form a connectivity graph from their positions and radio ranges.
A collection tree (hop-count shortest paths, ETX tie-break) roots every
mote at the basestation, exactly like TinyOS collection — the sensor
engine's aggregation and data collection run over this tree, and the
optimizer's "hops to base" cost input is the tree depth.

Message delivery is simulated hop by hop: each hop charges transmit /
receive energy, draws losses from the seeded RNG, retransmits up to a
retry bound, and adds per-hop latency on the shared simulator clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import EnergyExhaustedError, SensorNetworkError
from repro.runtime import Simulator, Trace
from repro.sensor.mote import Mote, MoteRole, Position
from repro.sensor.radio import RadioModel

#: Seconds added per radio hop (MAC + propagation + processing).
HOP_LATENCY = 0.02
#: Default cap on per-hop retransmissions before a message is dropped.
MAX_RETRIES = 3
#: Radio header bytes added to every message payload.
HEADER_BYTES = 11


@dataclass
class MessageStats:
    """Network-wide radio accounting."""

    transmissions: int = 0        # every tx attempt, including retries
    deliveries: int = 0           # messages that reached their next hop
    drops: int = 0                # messages abandoned after retries
    bytes_transmitted: int = 0

    def snapshot(self) -> "MessageStats":
        return MessageStats(
            self.transmissions, self.deliveries, self.drops, self.bytes_transmitted
        )

    def delta(self, earlier: "MessageStats") -> "MessageStats":
        """Stats accumulated since ``earlier``."""
        return MessageStats(
            self.transmissions - earlier.transmissions,
            self.deliveries - earlier.deliveries,
            self.drops - earlier.drops,
            self.bytes_transmitted - earlier.bytes_transmitted,
        )


class SensorNetwork:
    """A deployed network of motes with one basestation.

    Args:
        simulator: Shared discrete-event clock.
        radio: Link model; default :class:`RadioModel`.
        trace: Optional shared trace for time-series benches.
    """

    def __init__(
        self,
        simulator: Simulator,
        radio: RadioModel | None = None,
        trace: Trace | None = None,
    ):
        self.simulator = simulator
        self.radio = radio or RadioModel()
        self.trace = trace
        self.motes: dict[int, Mote] = {}
        self.stats = MessageStats()
        self._neighbors: dict[int, list[int]] = {}
        self._parent: dict[int, int] = {}
        self._hops: dict[int, int] = {}
        self._topology_stale = True
        #: Whether dead motes still participate as graph vertices. The
        #: healthy default keeps them (their links fail at send time,
        #: charging the energy model); the federated repair path flips
        #: this off so BFS routes *around* corpses.
        self._include_dead = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_mote(self, mote: Mote) -> Mote:
        if mote.mote_id in self.motes:
            raise SensorNetworkError(f"duplicate mote id {mote.mote_id}")
        self.motes[mote.mote_id] = mote
        self._topology_stale = True
        return mote

    def add_basestation(self, position: Position, radio_range: float = 150.0) -> Mote:
        """Add the basestation as mote 0."""
        mote = Mote(0, position, MoteRole.BASESTATION, radio_range)
        return self.add_mote(mote)

    @property
    def basestation(self) -> Mote:
        base = self.motes.get(0)
        if base is None or base.role is not MoteRole.BASESTATION:
            raise SensorNetworkError("network has no basestation (mote 0)")
        return base

    def mote(self, mote_id: int) -> Mote:
        mote = self.motes.get(mote_id)
        if mote is None:
            raise SensorNetworkError(f"unknown mote {mote_id}")
        return mote

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def rebuild_topology(self, include_dead: bool | None = None) -> None:
        """Recompute neighbor lists and the collection tree.

        ``include_dead`` controls whether dead motes keep their graph
        edges. It is sticky: an explicit value persists through later
        implicit rebuilds (``_ensure_topology``), so a repair that
        routed around a corpse stays routed around it. Dead motes are
        always kept as (edge-less) vertices so lookups don't key-error;
        the basestation is never excluded.
        """
        if include_dead is not None:
            self._include_dead = include_dead
        base_id = self.basestation.mote_id

        def usable(mote: Mote) -> bool:
            return self._include_dead or mote.alive or mote.mote_id == base_id

        self._neighbors = {mote_id: [] for mote_id in self.motes}
        for a_id, a in self.motes.items():
            if not usable(a):
                continue
            for b_id, b in self.motes.items():
                if a_id < b_id and usable(b) and a.can_hear(b) and b.can_hear(a):
                    self._neighbors[a_id].append(b_id)
                    self._neighbors[b_id].append(a_id)
        # BFS from the basestation → hop counts and parents.
        self._parent = {}
        self._hops = {}
        base_id = self.basestation.mote_id
        self._hops[base_id] = 0
        queue = deque([base_id])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(self._neighbors[current]):
                if neighbor not in self._hops:
                    self._hops[neighbor] = self._hops[current] + 1
                    self._parent[neighbor] = current
                    queue.append(neighbor)
        self._topology_stale = False

    def _ensure_topology(self) -> None:
        if self._topology_stale:
            self.rebuild_topology()

    def neighbors(self, mote_id: int) -> list[int]:
        self._ensure_topology()
        return list(self._neighbors.get(mote_id, []))

    def hops_to_base(self, mote_id: int) -> int:
        """Collection-tree depth of a mote; raises if disconnected."""
        self._ensure_topology()
        if mote_id not in self._hops:
            raise SensorNetworkError(f"mote {mote_id} is disconnected from the basestation")
        return self._hops[mote_id]

    def parent_of(self, mote_id: int) -> int:
        """Collection-tree parent (towards the basestation)."""
        self._ensure_topology()
        if mote_id == self.basestation.mote_id:
            raise SensorNetworkError("basestation has no parent")
        if mote_id not in self._parent:
            raise SensorNetworkError(f"mote {mote_id} is disconnected from the basestation")
        return self._parent[mote_id]

    def children_of(self, mote_id: int) -> list[int]:
        """Collection-tree children."""
        self._ensure_topology()
        return [m for m, p in self._parent.items() if p == mote_id]

    @property
    def diameter(self) -> int:
        """Deepest collection-tree level — the catalog's network diameter."""
        self._ensure_topology()
        return max(self._hops.values(), default=0)

    def is_connected(self) -> bool:
        self._ensure_topology()
        return len(self._hops) == len(self.motes)

    def route(self, source_id: int, target_id: int) -> list[int]:
        """Shortest hop path between two motes (BFS over connectivity)."""
        self._ensure_topology()
        if source_id == target_id:
            return [source_id]
        previous: dict[int, int] = {source_id: source_id}
        queue = deque([source_id])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(self._neighbors[current]):
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == target_id:
                        path = [target_id]
                        while path[-1] != source_id:
                            path.append(previous[path[-1]])
                        return list(reversed(path))
                    queue.append(neighbor)
        raise SensorNetworkError(f"no route from mote {source_id} to mote {target_id}")

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        source_id: int,
        target_id: int,
        payload_bytes: int,
        payload: Any = None,
        on_delivered: Callable[[Any, float], None] | None = None,
    ) -> None:
        """Send a message along the shortest path, hop by hop.

        Energy, retries, losses and latency are simulated per hop. On
        end-to-end success ``on_delivered(payload, time)`` fires at the
        delivery timestamp. Drops (retry exhaustion, dead relay) are
        counted and traced but not retried end-to-end — matching the
        best-effort collection semantics of real deployments.
        """
        path = self.route(source_id, target_id)
        if len(path) == 1:
            if on_delivered is not None:
                on_delivered(payload, self.simulator.now)
            return
        self._hop(path, 0, payload_bytes, payload, on_delivered)

    def send_to_base(
        self,
        source_id: int,
        payload_bytes: int,
        payload: Any = None,
        on_delivered: Callable[[Any, float], None] | None = None,
    ) -> None:
        """Send up the collection tree to the basestation."""
        self._ensure_topology()
        base_id = self.basestation.mote_id
        self.hops_to_base(source_id)  # raises when disconnected
        # Tree path: follow parents.
        path = [source_id]
        while path[-1] != base_id:
            path.append(self._parent[path[-1]])
        self._hop(path, 0, payload_bytes, payload, on_delivered)

    def _hop(
        self,
        path: list[int],
        index: int,
        payload_bytes: int,
        payload: Any,
        on_delivered: Callable[[Any, float], None] | None,
        retry: int = 0,
    ) -> None:
        sender = self.motes[path[index]]
        receiver = self.motes[path[index + 1]]
        if not sender.alive:
            self.stats.drops += 1
            self._trace("drop", {"reason": "dead-sender", "mote": sender.mote_id})
            return
        total_bytes = payload_bytes + HEADER_BYTES
        try:
            sender.account_tx(total_bytes)
        except EnergyExhaustedError:
            self.stats.drops += 1
            self._trace("drop", {"reason": "dead-sender", "mote": sender.mote_id})
            return
        self.stats.transmissions += 1
        self.stats.bytes_transmitted += total_bytes

        link = self.radio.link(sender, receiver)
        delivered = (
            link is not None
            and receiver.alive
            and self.radio.attempt_delivery(link, self.simulator.rng)
        )

        def arrive() -> None:
            # The receiver may have died while the message was in flight.
            if delivered and receiver.alive:
                try:
                    receiver.account_rx(total_bytes)
                except EnergyExhaustedError:
                    self.stats.drops += 1
                    self._trace("drop", {"reason": "dead-receiver", "mote": receiver.mote_id})
                    return
                self.stats.deliveries += 1
                if path[index + 1] == path[-1]:
                    if on_delivered is not None:
                        on_delivered(payload, self.simulator.now)
                else:
                    self._hop(path, index + 1, payload_bytes, payload, on_delivered)
            elif retry < MAX_RETRIES:
                self._hop(path, index, payload_bytes, payload, on_delivered, retry + 1)
            else:
                self.stats.drops += 1
                self._trace(
                    "drop",
                    {"reason": "retries", "from": sender.mote_id, "to": receiver.mote_id},
                )

        self.simulator.schedule_in(HOP_LATENCY, arrive)

    # ------------------------------------------------------------------
    def total_energy_spent(self) -> float:
        """Sum of all motes' spent energy (mJ), basestation excluded."""
        return sum(
            m.battery.spent()
            for m in self.motes.values()
            if m.role is not MoteRole.BASESTATION
        )

    def min_battery_fraction(self) -> float:
        """Worst remaining battery fraction — the network-lifetime proxy."""
        fractions = [
            m.battery.fraction_remaining
            for m in self.motes.values()
            if m.role is not MoteRole.BASESTATION
        ]
        return min(fractions, default=1.0)

    def _trace(self, category: str, payload: Any) -> None:
        if self.trace is not None:
            self.trace.log(self.simulator.now, f"net.{category}", payload)
