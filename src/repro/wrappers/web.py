"""Web-source wrappers: weather forecasts and calendars.

Paper §1 lists "data from the Web (e.g., weather forecasts, calendars)"
among the sources an intelligent building integrates. The simulated
endpoints serve JSON-ish documents the wrappers parse — exercising the
fetch-and-translate path without a network.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import WrapperError
from repro.runtime import Simulator
from repro.stream.engine import StreamEngine
from repro.wrappers.base import Wrapper


class WeatherService:
    """A fake forecast endpoint: diurnal sinusoid plus seeded noise."""

    def __init__(self, simulator: Simulator, base_temp_c: float = 16.0, swing_c: float = 7.0):
        self.simulator = simulator
        self.base_temp_c = base_temp_c
        self.swing_c = swing_c

    def fetch(self) -> str:
        """The document a real wrapper would GET."""
        now = self.simulator.now
        hour_angle = 2 * math.pi * ((now / 3600.0) % 24.0) / 24.0
        temp = (
            self.base_temp_c
            + self.swing_c * math.sin(hour_angle - math.pi / 2)
            + self.simulator.rng.gauss(0, 0.4)
        )
        return json.dumps(
            {
                "observed_at": now,
                "outdoor_temp_c": round(temp, 2),
                "condition": "clear" if temp > self.base_temp_c else "cloudy",
            }
        )


class WeatherWrapper(Wrapper):
    """Polls the weather endpoint and emits ``Weather`` tuples."""

    def __init__(
        self,
        engine: StreamEngine,
        simulator: Simulator,
        service: WeatherService,
        period: float = 300.0,
        source_name: str = "Weather",
    ):
        super().__init__(source_name, engine, simulator, period)
        self.service = service

    def poll(self) -> list[Mapping[str, Any]]:
        document = self.service.fetch()
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise WrapperError(f"weather endpoint returned invalid JSON: {exc}") from exc
        return [
            {
                "observed_at": float(payload["observed_at"]),
                "outdoor_temp_c": float(payload["outdoor_temp_c"]),
                "condition": str(payload["condition"]),
            }
        ]


@dataclass(frozen=True)
class CalendarEvent:
    """One scheduled event (a meeting a visitor may be heading to)."""

    title: str
    room: str
    start: float        # simulation seconds
    duration: float
    organizer: str = ""


class CalendarService:
    """A fake calendar endpoint serving upcoming events."""

    def __init__(self, events: list[CalendarEvent]):
        self.events = sorted(events, key=lambda e: e.start)

    def fetch(self, now: float, horizon: float = 3600.0) -> str:
        upcoming = [
            {
                "title": e.title,
                "room": e.room,
                "start": e.start,
                "duration": e.duration,
                "organizer": e.organizer,
            }
            for e in self.events
            if now <= e.start <= now + horizon or e.start <= now < e.start + e.duration
        ]
        return json.dumps({"events": upcoming})


class CalendarWrapper(Wrapper):
    """Emits one ``Calendar`` tuple per live-or-upcoming event per poll."""

    def __init__(
        self,
        engine: StreamEngine,
        simulator: Simulator,
        service: CalendarService,
        period: float = 600.0,
        source_name: str = "Calendar",
    ):
        super().__init__(source_name, engine, simulator, period)
        self.service = service

    def poll(self) -> list[Mapping[str, Any]]:
        document = self.service.fetch(self.simulator.now)
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise WrapperError(f"calendar endpoint returned invalid JSON: {exc}") from exc
        return [
            {
                "title": str(e["title"]),
                "room": str(e["room"]),
                "start": float(e["start"]),
                "duration": float(e["duration"]),
                "organizer": str(e.get("organizer", "")),
            }
            for e in payload["events"]
        ]
