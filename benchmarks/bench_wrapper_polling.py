"""Experiment E9 (ablation) — the PDU wrapper's 10-second polling period.

Paper §2: "A 'wrapper' periodically (every 10s) extracts this value and
sends it along a data stream." This ablation sweeps the polling period
and reports the freshness/traffic tradeoff: mean staleness of the power
reading (sampled once per simulated second) versus tuples scraped per
hour.

Shape: staleness grows ~linearly with the period (≈ period/2 mean);
traffic falls as 1/period; the paper's 10 s sits at the knee — under
6 s mean staleness for 12x less traffic than 1 s polling.
"""

import pytest

from repro.catalog import Catalog
from repro.data import DataType, Schema
from repro.runtime import Simulator
from repro.stream import StreamEngine
from repro.wrappers import (
    MachineSpec,
    PduWrapper,
    PowerDistributionUnit,
    SimulatedMachine,
)

RUN_SECONDS = 600.0


def run_period(period: float) -> tuple[float, float, int]:
    """Returns (mean staleness s, max staleness s, tuples produced)."""
    simulator = Simulator(seed=23)
    catalog = Catalog()
    catalog.register_stream(
        "Power",
        Schema.of(
            ("pdu", DataType.STRING),
            ("outlet", DataType.INT),
            ("host", DataType.STRING),
            ("watts", DataType.FLOAT),
        ),
    )
    engine = StreamEngine(catalog)
    machine = SimulatedMachine(MachineSpec("ws1", "lab1", "d1", "x"), simulator, seed=5)
    pdu = PowerDistributionUnit("pdu1")
    pdu.plug(1, machine)
    wrapper = PduWrapper(engine, simulator, pdu, period=period)

    last_seen = {"t": None}
    original_poll = wrapper._poll_once

    def observing_poll():
        original_poll()
        last_seen["t"] = simulator.now

    wrapper._task = None
    wrapper._poll_once = observing_poll
    wrapper.start()

    staleness = []
    t = 1.0
    while t <= RUN_SECONDS:
        simulator.run_until(t)
        if last_seen["t"] is not None:
            staleness.append(simulator.now - last_seen["t"])
        t += 1.0
    mean = sum(staleness) / len(staleness)
    return mean, max(staleness), wrapper.tuples_produced


def test_e9_polling_tradeoff(table_printer, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    series = {}
    for period in (1.0, 5.0, 10.0, 30.0, 60.0):
        mean, worst, tuples = run_period(period)
        series[period] = (mean, tuples)
        rows.append(
            [
                f"{period:.0f}",
                f"{mean:.1f}",
                f"{worst:.1f}",
                tuples,
                f"{tuples * 3600 / RUN_SECONDS:.0f}",
            ]
        )
        # Mean staleness ≈ period / 2 (uniform sampling between polls).
        assert mean == pytest.approx(period / 2, rel=0.35, abs=0.6)
    table_printer(
        "E9: PDU polling period — freshness vs traffic (600 s run)",
        ["period (s)", "mean stale (s)", "max stale (s)", "tuples", "tuples/hour"],
        rows,
    )
    # Monotone tradeoff, and the paper's 10 s is a sane knee:
    assert series[1.0][0] < series[10.0][0] < series[60.0][0]
    assert series[1.0][1] > series[10.0][1] > series[60.0][1]
    assert series[10.0][0] < 6.0
    assert series[10.0][1] <= series[1.0][1] / 8


def test_e9_scrape_speed(benchmark):
    simulator = Simulator(seed=23)
    machine = SimulatedMachine(MachineSpec("ws1", "lab1", "d1", "x"), simulator, seed=5)
    pdu = PowerDistributionUnit("pdu1")
    for outlet in range(1, 9):
        pdu.plug(outlet, machine)
    from repro.wrappers.pdu import parse_status_page

    benchmark(lambda: parse_status_page(pdu.render_status_page()))
