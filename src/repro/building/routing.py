"""Shortest-path routing over the building's routing graph.

Two interchangeable implementations answer "route me from here to
there":

* :func:`shortest_path` — Dijkstra directly over the
  :class:`~repro.building.topology.RoutingGraph` (the oracle).
* :class:`StreamRouter` — the paper's approach: a *recursive stream
  view* (transitive closure with path tracking) maintained by the
  stream engine, so routes reflect live topology changes (closed doors
  remove edges) without recomputation. Queries read the materialised
  closure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.data.schema import Schema
from repro.data.types import DataType
from repro.data.tuples import Row
from repro.errors import RoutingError
from repro.building.topology import RoutingGraph


@dataclass(frozen=True)
class Route:
    """A concrete walking route.

    Attributes:
        points: Routing point names from start to destination inclusive.
        distance: Total length in feet.
    """

    points: tuple[str, ...]
    distance: float

    @property
    def start(self) -> str:
        return self.points[0]

    @property
    def end(self) -> str:
        return self.points[-1]

    def render(self) -> str:
        return " -> ".join(self.points) + f"  ({self.distance:.0f} ft)"


def shortest_path(graph: RoutingGraph, start: str, end: str) -> Route:
    """Dijkstra; raises :class:`RoutingError` when unreachable."""
    graph.point(start)
    graph.point(end)
    if start == end:
        return Route((start,), 0.0)
    distances: dict[str, float] = {start: 0.0}
    previous: dict[str, str] = {}
    heap: list[tuple[float, str]] = [(0.0, start)]
    visited: set[str] = set()
    while heap:
        distance, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        if current == end:
            break
        for neighbor, weight in graph.neighbors(current).items():
            candidate = distance + weight
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                previous[neighbor] = current
                heapq.heappush(heap, (candidate, neighbor))
    if end not in distances:
        raise RoutingError(f"no route from {start!r} to {end!r}")
    path = [end]
    while path[-1] != start:
        path.append(previous[path[-1]])
    return Route(tuple(reversed(path)), distances[end])


#: Schema of the closure view: reachable pairs with best-known distance
#: and the explicit path (" -> "-joined point names).
CLOSURE_SCHEMA = Schema.of(
    ("src", DataType.STRING),
    ("dst", DataType.STRING),
    ("distance", DataType.FLOAT),
    ("path", DataType.STRING),
)


class StreamRouter:
    """Routing via an incrementally maintained transitive-closure view.

    The closure is seeded from the routing graph's edges and maintained
    under edge insertions/deletions through
    :class:`~repro.stream.recursive.RecursiveView`. Because the closure
    enumerates *paths* (bounded by ``max_hops`` to keep it finite on
    cyclic graphs), route lookup is a scan of the materialised rows for
    the best (shortest) entry.

    Args:
        graph: The routing graph to mirror.
        max_hops: Bound on path length in segments. Building routing
            graphs are shallow (hallway spine + room stubs), so small
            bounds cover all real routes; raise it for sprawling maps.
    """

    def __init__(self, graph: RoutingGraph, max_hops: int = 12):
        from repro.catalog import Catalog
        from repro.plan import PlanBuilder
        from repro.stream.recursive import RecursiveView
        from repro.wrappers.database import ROUTING_POINTS_SCHEMA

        self.graph = graph
        self.max_hops = max_hops
        # A private catalog: the closure plan only reads RoutingPoints.
        self._catalog = Catalog()
        self._catalog.register_table("RoutingPoints", ROUTING_POINTS_SCHEMA)
        builder = PlanBuilder(self._catalog)
        # The closure enumerates *simple* paths: ``path`` is a
        # '|'-delimited node list and the step refuses to revisit a node
        # (NOT LIKE on the delimited name). Distances accumulate per
        # path, so route() can pick the true shortest entry.
        plan = builder.build_sql(
            """
            WITH RECURSIVE closure(src, dst, distance, path, hops) AS (
              SELECT e.src, e.dst, e.distance,
                     '|' + e.src + '|' + e.dst + '|', 1
              FROM RoutingPoints e
              UNION
              SELECT c.src, e.dst, c.distance + e.distance,
                     c.path + e.dst + '|', c.hops + 1
              FROM closure c, RoutingPoints e
              WHERE c.dst = e.src AND c.hops < %d
                AND c.path NOT LIKE '%%|' + e.dst + '|%%'
            )
            SELECT src, dst, distance, path FROM closure
            """
            % max_hops
        )
        self._plan = plan
        edge_rows = [
            Row(ROUTING_POINTS_SCHEMA, (r["src"], r["dst"], r["distance"]))
            for r in graph.edge_rows()
        ]
        self._schema = ROUTING_POINTS_SCHEMA
        self._view = RecursiveView(plan.recursive, {"RoutingPoints": edge_rows})

    # ------------------------------------------------------------------
    @property
    def view(self):
        """The underlying recursive view (exposed for benches/tests)."""
        return self._view

    def closure_size(self) -> int:
        return len(self._view)

    def route(self, start: str, end: str) -> Route:
        """Best route in the materialised closure.

        The closure row's ``path`` records the chain of *sources*; the
        destination is appended at read time.
        """
        if start == end:
            return Route((start,), 0.0)
        best: tuple[float, str] | None = None
        for row in self._view.rows():
            if row["src"] == start and row["dst"] == end:
                candidate = (row["distance"], row["path"])
                if best is None or candidate[0] < best[0]:
                    best = candidate
        if best is None:
            raise RoutingError(f"no route from {start!r} to {end!r} in closure")
        # The recorded path is '|'-delimited: "|a|b|c|".
        points = tuple(p for p in best[1].split("|") if p)
        return Route(points, best[0])

    # ------------------------------------------------------------------
    # Live topology changes
    # ------------------------------------------------------------------
    def close_segment(self, a: str, b: str) -> None:
        """Remove a corridor/door segment from the live closure."""
        distance = self.graph.neighbors(a).get(b)
        if distance is None:
            return
        self.graph.remove_edge(a, b)
        rows = [
            Row(self._schema, (a, b, distance)),
            Row(self._schema, (b, a, distance)),
        ]
        self._view.delete("RoutingPoints", rows)

    def open_segment(self, a: str, b: str, distance: float | None = None) -> None:
        """(Re)insert a segment into the live closure."""
        self.graph.add_edge(a, b, distance)
        actual = self.graph.neighbors(a)[b]
        rows = [
            Row(self._schema, (a, b, actual)),
            Row(self._schema, (b, a, actual)),
        ]
        self._view.insert("RoutingPoints", rows)
