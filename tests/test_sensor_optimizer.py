"""Tests for the sensor-engine optimizer: capabilities, join placement, costs."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.sensor import (
    JoinPair,
    JoinStrategy,
    SensorCostModel,
    SensorEngineOptimizer,
)


@pytest.fixture
def optimizer(catalog, line_network):
    return SensorEngineOptimizer(catalog, line_network)


class TestCapabilities:
    def test_sensor_filter_executable(self, optimizer, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status = 'open'"
        )
        # The Project/Select/Scan chain is in-network executable.
        assert optimizer.can_execute(plan)

    def test_stream_source_not_executable(self, optimizer, builder):
        plan = builder.build_sql("select p.id from Person p")
        assert not optimizer.can_execute(plan)

    def test_like_not_supported_on_motes(self, optimizer, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status like '%o%'"
        )
        assert not optimizer.can_execute(plan)

    def test_functions_not_supported(self, optimizer, builder):
        plan = builder.build_sql("select lower(sa.room) from AreaSensors sa")
        assert not optimizer.can_execute(plan)

    def test_grouped_aggregate_not_supported(self, optimizer, builder):
        plan = builder.build_sql(
            "select sa.room, count(*) from AreaSensors sa group by sa.room"
        )
        assert not optimizer.can_execute(plan)

    def test_global_aggregate_supported(self, optimizer, builder):
        plan = builder.build_sql("select count(*) from AreaSensors sa")
        assert optimizer.can_execute(plan)

    def test_pairwise_sensor_join_supported(self, optimizer, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, SeatSensors ss "
            "where sa.room = ss.room and ss.status = 'free'"
        )
        assert optimizer.can_execute(plan)

    def test_mixed_join_not_supported(self, optimizer, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, Machines m where sa.room = m.room"
        )
        assert not optimizer.can_execute(plan)


class TestJoinSiteSelection:
    def test_adjacent_pair_joins_locally_under_selective_predicate(self, optimizer):
        decisions = optimizer.choose_join_sites([JoinPair(4, 5)], selectivity=0.1)
        decision = decisions[0]
        # hops: 4→base=4, 5→base=5, between=1.
        assert decision.cost_at_base == pytest.approx(9.0)
        assert decision.cost_at_left == pytest.approx(1.0 + 0.1 * 4)
        assert decision.cost_at_right == pytest.approx(1.0 + 0.1 * 5)
        assert decision.pair.strategy is JoinStrategy.AT_LEFT

    def test_unselective_predicate_may_prefer_base(self, optimizer):
        # With selectivity 1 and a huge inter-pair distance, shipping to
        # the base wins.
        decisions = optimizer.choose_join_sites([JoinPair(1, 5)], selectivity=1.0)
        decision = decisions[0]
        # base: 1+5=6; left: 4 + 1*1 = 5; right: 4 + 1*5 = 9 → AT_LEFT still.
        assert decision.pair.strategy is JoinStrategy.AT_LEFT
        assert decision.cost_at_base == pytest.approx(6.0)

    def test_per_pair_independence(self, optimizer):
        """The headline behaviour: different pairs get different sites."""
        decisions = optimizer.choose_join_sites(
            [JoinPair(1, 2), JoinPair(5, 4)], selectivity=0.5
        )
        strategies = {
            (d.pair.left_mote, d.pair.right_mote): d.pair.strategy for d in decisions
        }
        # Pair (1,2): left is 1 hop from base → join at left.
        assert strategies[(1, 2)] is JoinStrategy.AT_LEFT
        # Pair (5,4): right (4) is closer to base than left (5).
        assert strategies[(5, 4)] is JoinStrategy.AT_RIGHT

    def test_chosen_cost_is_minimum(self, optimizer):
        for pair in ([JoinPair(2, 3)], [JoinPair(1, 5)], [JoinPair(4, 4)]):
            decision = optimizer.choose_join_sites(pair, 0.3)[0]
            assert decision.chosen_cost == min(
                decision.cost_at_base, decision.cost_at_left, decision.cost_at_right
            )


class TestFragmentPlanning:
    def test_collection_fragment(self, optimizer, builder, catalog):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status = 'open'"
        )
        deployment, cost = optimizer.plan_fragment(plan)
        assert deployment.kind == "collection"
        assert deployment.relations == ["AreaSensors"]
        assert cost.messages_per_epoch > 0
        assert cost.epoch_seconds == 10.0

    def test_selective_collection_cheaper(self, optimizer, builder):
        unfiltered = builder.build_sql("select sa.room from AreaSensors sa")
        filtered = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status = 'open'"
        )
        _, cost_all = optimizer.plan_fragment(unfiltered)
        _, cost_some = optimizer.plan_fragment(filtered)
        assert cost_some.messages_per_epoch < cost_all.messages_per_epoch

    def test_aggregation_fragment(self, optimizer, builder):
        plan = builder.build_sql("select count(*) from SeatSensors ss")
        deployment, cost = optimizer.plan_fragment(plan)
        assert deployment.kind == "aggregation"
        assert deployment.aggregate == "COUNT"

    def test_join_fragment_records_decisions(self, optimizer, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, SeatSensors ss "
            "where sa.room = ss.room and sa.status = 'open'"
        )
        deployment, cost = optimizer.plan_fragment(plan)
        assert deployment.kind == "join"
        assert len(deployment.decisions) == 3  # zip of (1,2,3)×(4,5,6)
        assert cost.messages_per_epoch == pytest.approx(
            sum(d.chosen_cost for d in deployment.decisions)
        )

    def test_pairing_provider_overrides_zip(self, optimizer, builder):
        optimizer.pairing_provider = lambda left, right: [JoinPair(1, 4), JoinPair(1, 5)]
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, SeatSensors ss where sa.room = ss.room"
        )
        deployment, _ = optimizer.plan_fragment(plan)
        assert [(p.left_mote, p.right_mote) for p in deployment.pairs] == [(1, 4), (1, 5)]

    def test_unsupported_fragment_raises(self, optimizer, builder):
        plan = builder.build_sql("select p.id from Person p")
        with pytest.raises(UnsupportedQueryError):
            optimizer.plan_fragment(plan)

    def test_messages_per_second(self, optimizer, builder):
        plan = builder.build_sql("select sa.room from AreaSensors sa")
        _, cost = optimizer.plan_fragment(plan)
        assert cost.messages_per_second == pytest.approx(
            cost.messages_per_epoch / cost.epoch_seconds
        )


class TestCostModelFallbacks:
    def test_without_network_uses_catalog_diameter(self, catalog):
        model = SensorCostModel(catalog, network=None)
        catalog.network.diameter = 6
        assert model.hops_to_base(99) == 3.0
        assert model.hop_distance(1, 2) == 1.0

    def test_aggregation_cost_counts_tree_edges(self, catalog, line_network):
        model = SensorCostModel(catalog, line_network)
        messages, _ = model.aggregation_cost((1, 2, 3, 4, 5))
        assert messages == 5.0  # line: one edge per mote

    def test_aggregation_cost_includes_relay_edges(self, catalog, line_network):
        model = SensorCostModel(catalog, line_network)
        messages, _ = model.aggregation_cost((5,))
        assert messages == 5.0  # deep mote drags PSR through every relay
