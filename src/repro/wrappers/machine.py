"""Simulated machines and the machine-state "soft sensor" wrapper.

Paper §2 (machine-state monitoring): "Servers and workstations run
software that monitors machine activity: jobs executing, users logged
in, CPU utilization, memory, number of requests being handled in a Web
server application."

:class:`SimulatedMachine` is the device model: a small stochastic
workload process whose intensity reflects whether someone is seated at
the machine (the building occupant model toggles :attr:`occupied`) plus
a background server load. CPU drives power draw and case temperature, so
the PDU wrapper and the workstation temperature motes observe a
consistent physical world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.runtime import Simulator
from repro.stream.engine import StreamEngine
from repro.wrappers.base import Wrapper

#: Watts drawn at idle and per unit of CPU utilisation.
IDLE_WATTS = 45.0
WATTS_PER_CPU = 85.0
#: Case temperature: ambient plus CPU-proportional heating.
AMBIENT_C = 21.0
HEAT_PER_CPU = 24.0


@dataclass
class MachineSpec:
    """Static configuration of one machine (the ``Machines`` table row).

    Attributes:
        host: Machine name ("lab1-ws3").
        room: Room / laboratory identifier.
        desk: Desk identifier within the room.
        software: Installed software, comma-separated ("Fedora,Word").
        is_server: Servers carry background load even when unoccupied.
    """

    host: str
    room: str
    desk: str
    software: str
    is_server: bool = False

    def as_row(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "room": self.room,
            "desk": self.desk,
            "software": self.software,
        }


class SimulatedMachine:
    """Workload, power and thermal model for one machine.

    The model advances lazily: every observation calls
    :meth:`_advance`, which steps the workload process up to the current
    simulation time in one-second ticks. All randomness flows through
    the machine's own RNG (seeded from the spec name) so deployments are
    reproducible regardless of observation order.
    """

    def __init__(self, spec: MachineSpec, simulator: Simulator, seed: int | None = None):
        self.spec = spec
        self.simulator = simulator
        self.rng = random.Random(seed if seed is not None else hash(spec.host) & 0xFFFF)
        self.occupied = False
        self.users = 0
        self.jobs = 0
        self.cpu = 0.02
        self.memory_mb = 400.0
        self.web_requests = 0
        self._last_advance = simulator.now
        self._failed = False

    # ------------------------------------------------------------------
    # World interaction
    # ------------------------------------------------------------------
    def set_occupied(self, occupied: bool) -> None:
        """Occupancy toggles the interactive workload (building model calls this)."""
        self.occupied = occupied

    def fail(self) -> None:
        """Hard failure: CPU pegs then the machine goes dark (for E4 alarms)."""
        self._failed = True

    def repair(self) -> None:
        self._failed = False

    @property
    def failed(self) -> bool:
        return self._failed

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe(self) -> dict[str, Any]:
        """Current machine-state tuple (advances the model first)."""
        self._advance()
        return {
            "host": self.spec.host,
            "room": self.spec.room,
            "desk": self.spec.desk,
            "jobs": self.jobs,
            "users": self.users,
            "cpu": round(self.cpu, 4),
            "memory_mb": round(self.memory_mb, 1),
            "web_requests": self.web_requests,
        }

    def power_watts(self) -> float:
        """Instantaneous power draw (the PDU's view of this machine)."""
        self._advance()
        return IDLE_WATTS + WATTS_PER_CPU * self.cpu

    def temperature_c(self) -> float:
        """Case temperature (the workstation mote's view)."""
        self._advance()
        return AMBIENT_C + HEAT_PER_CPU * self.cpu + self.rng.gauss(0, 0.3)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        now = self.simulator.now
        while self._last_advance + 1.0 <= now:
            self._last_advance += 1.0
            self._tick()

    def _tick(self) -> None:
        rng = self.rng
        if self._failed:
            self.cpu = min(1.0, self.cpu + 0.2)
            self.jobs = max(self.jobs, 50)
            return
        # Interactive workload follows occupancy.
        target_users = 1 if self.occupied else 0
        if self.spec.is_server:
            target_users += 2
        if self.users < target_users and rng.random() < 0.5:
            self.users += 1
        elif self.users > target_users and rng.random() < 0.3:
            self.users -= 1
        # Jobs: arrivals proportional to users, departures proportional to jobs.
        arrivals = sum(1 for _ in range(self.users) if rng.random() < 0.4)
        if self.spec.is_server:
            arrivals += sum(1 for _ in range(3) if rng.random() < 0.5)
        departures = sum(1 for _ in range(self.jobs) if rng.random() < 0.35)
        self.jobs = max(0, self.jobs + arrivals - departures)
        # CPU tracks job pressure with noise; memory tracks jobs slowly.
        target_cpu = min(0.95, 0.03 + 0.12 * self.jobs)
        self.cpu += 0.5 * (target_cpu - self.cpu) + rng.gauss(0, 0.01)
        self.cpu = min(1.0, max(0.0, self.cpu))
        self.memory_mb += 0.3 * ((400.0 + 150.0 * self.jobs) - self.memory_mb)
        if self.spec.is_server:
            self.web_requests = max(
                0, self.web_requests + rng.randint(-3, 5)
            )
        else:
            self.web_requests = 0


class MachineStateWrapper(Wrapper):
    """Publishes one ``MachineState`` tuple per machine per poll."""

    def __init__(
        self,
        engine: StreamEngine,
        simulator: Simulator,
        machines: list[SimulatedMachine],
        period: float = 5.0,
        source_name: str = "MachineState",
    ):
        super().__init__(source_name, engine, simulator, period)
        self.machines = list(machines)

    def poll(self) -> list[Mapping[str, Any]]:
        return [machine.observe() for machine in self.machines]
