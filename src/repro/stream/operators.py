"""Physical operators of the PC-side stream engine.

The engine is a push dataflow over
:class:`~repro.data.streams.StreamElement` items. Every operator is a
:class:`~repro.data.streams.StreamConsumer` that transforms elements and
pushes results to its downstream consumer. Punctuations (watermarks)
flow through every operator and drive state eviction, window emission
and batch boundaries for ORDER BY / LIMIT.

Batched push: every operator also accepts ``push_batch(items)`` — a
whole list of elements and punctuations in arrival order. Stateless
row-at-a-time operators (:class:`FilterOp`, :class:`ProjectOp`,
:class:`FusedOp`) traverse the batch in one dispatch and forward one
output batch, so a 1000-row ingest costs one Python call per operator
instead of 1000; stateful operators fall back to per-item ``push``.
Downstream consumers that don't implement ``push_batch`` (the protocol
is optional) receive per-item pushes, so batches degrade gracefully at
any pipeline edge.

State bounds: window joins evict expired rows on punctuation, so memory
is proportional to window size times input rate — the property the paper
relies on for long-running monitoring queries.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable

from repro.data.schema import Schema
from repro.data.streams import (
    Punctuation,
    StreamConsumer,
    StreamElement,
    StreamItem,
)
from repro.data.tuples import Row
from repro.data.windows import WindowKind, WindowSpec
from repro.errors import ExecutionError, SchemaError, UnknownFieldError
from repro.sql.ast import OrderItem
from repro.sql.compiled import (
    FusedStage,
    compile_accumulate,
    compile_expr,
    compile_fused,
    compile_fused_batch,
    compile_projection,
)
from repro.sql.expressions import AggregateCall, Expr


_NEG_INF = float("-inf")
_INF = float("inf")


def _copy_generated_state(state: list) -> list:
    """Copy one ``compile_accumulate`` group-state list.

    Generated state slots are ints, floats, None, or seen-sets (for
    DISTINCT calls) — only the sets are mutable, so a shallow copy with
    per-set duplication detaches the state from the live operator.
    """
    return [slot.copy() if isinstance(slot, set) else slot for slot in state]


def _positional_key(schema: Schema, names: list[str]) -> Callable[[tuple], Any]:
    """A values-tuple -> hash-key function with names resolved once.

    Single-column keys hash the bare value (both join sides use the same
    convention within one operator, so grouping is unaffected).
    """
    from operator import itemgetter

    indexes = [schema.index_of(name) for name in names]
    if not indexes:
        return lambda values: ()
    return itemgetter(*indexes)


class Operator:
    """Base class: a consumer with one downstream and simple counters."""

    def __init__(self, downstream: StreamConsumer):
        self.downstream = downstream
        # Batched forwarding is duck-typed: resolved once at wiring time,
        # None when the downstream only speaks per-item push.
        self._down_batch: Callable[[list[StreamItem]], None] | None = getattr(
            downstream, "push_batch", None
        )
        self.rows_in = 0
        self.rows_out = 0

    def push(self, item: StreamItem) -> None:
        if isinstance(item, Punctuation):
            self.on_punctuation(item)
        else:
            self.rows_in += 1
            self.on_element(item)

    def push_batch(self, items: list[StreamItem]) -> None:
        """Receive a whole batch of items in arrival order.

        Default: per-item dispatch. Vectorized operators override this
        to traverse the batch with one call and forward output batches.
        """
        push = self.push
        for item in items:
            push(item)

    def on_element(self, element: StreamElement) -> None:
        raise NotImplementedError

    def on_punctuation(self, punctuation: Punctuation) -> None:
        """Default: forward the watermark unchanged."""
        self.downstream.push(punctuation)

    def emit(self, element: StreamElement) -> None:
        self.rows_out += 1
        self.downstream.push(element)

    def _push_batch_generated(
        self,
        batch_fn: Callable[[list, list], None],
        items: list[StreamItem],
    ) -> bool:
        """Run one generated batch loop over ``items``.

        The fast path assumes ingest batches are punctuation-free: a
        Punctuation in the batch surfaces as AttributeError (no ``.row``)
        before any output is emitted, and the method returns False so
        the caller can redo the batch with per-run splitting. Returns
        True when the whole batch was handled.
        """
        out: list[StreamElement] = []
        try:
            batch_fn(items, out)
        except AttributeError:
            if any(isinstance(item, Punctuation) for item in items):
                return False
            raise
        self.rows_in += len(items)
        if out:
            self.emit_batch(out)
        return True

    def emit_batch(self, elements: list[StreamElement]) -> None:
        """Forward a batch of output elements, batched when possible.

        ``_down_batch`` only remembers *whether* the downstream speaks
        the batched protocol; the method itself is resolved per batch so
        consumers that wrap their entry points after wiring (a Cursor
        subscription tapping the sink) still observe every element.
        """
        self.rows_out += len(elements)
        if self._down_batch is not None:
            self.downstream.push_batch(elements)
        else:
            push = self.downstream.push
            for element in elements:
                push(element)

    #: True when the operator only ever reads ``element.row.values`` (its
    #: expressions are positionally compiled) and emits rows whose schema
    #: does not derive from the incoming row's. The plan compiler elides
    #: the port's renaming shim for such operators: sources can feed
    #: catalog-schema rows straight in because nobody downstream will
    #: ever resolve a column by the incoming names.
    consumes_values_only = False

    # -- checkpointing ----------------------------------------------------
    def state_snapshot(self) -> dict:
        """Detached recovery state (see :mod:`repro.stream.checkpoint`).

        StreamElements are immutable by convention, so snapshots share
        them and copy only the containers. Stateless operators carry
        just their counters.
        """
        return {
            "type": type(self).__name__,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
        }

    def state_restore(self, state: dict) -> None:
        """Load a :meth:`state_snapshot` into a freshly compiled operator.

        The snapshot stays usable afterwards (mutable containers are
        copied in), so one checkpoint can restore several replicas.
        """
        if state.get("type") != type(self).__name__:
            raise ExecutionError(
                f"checkpoint state for {state.get('type')} cannot restore "
                f"a {type(self).__name__} — the recompiled plan diverged"
            )
        self.rows_in = state["rows_in"]
        self.rows_out = state["rows_out"]


class FilterOp(Operator):
    """Row filter: forwards elements whose predicate evaluates to TRUE.

    SQL three-valued logic: NULL (unknown) does not pass.
    """

    def __init__(
        self,
        predicate: Expr,
        downstream: StreamConsumer,
        input_schema: Schema | None = None,
    ):
        super().__init__(downstream)
        self.predicate = predicate
        # Schema-bound compilation: with the input schema known, the
        # predicate runs as a closure over the row's value tuple, and a
        # generated batch loop (one Python call per ingest batch) serves
        # push_batch — the same codegen a fused chain of one uses.
        self._compiled = (
            compile_expr(predicate, input_schema) if input_schema is not None else None
        )
        self._batch_fn = (
            compile_fused_batch([("filter", predicate)], input_schema, input_schema)
            if input_schema is not None
            else None
        )
        # A compiled filter never reads the row's schema, but it forwards
        # the element unchanged — so it is schema-oblivious only when
        # everything downstream is too (see Operator.consumes_values_only).
        self.consumes_values_only = self._compiled is not None and getattr(
            downstream, "consumes_values_only", False
        )

    def on_element(self, element: StreamElement) -> None:
        compiled = self._compiled
        if compiled is not None:
            if compiled(element.row.values) is True:
                # emit() inlined: this is the hottest call site.
                self.rows_out += 1
                self.downstream.push(element)
        elif self.predicate.eval(element.row) is True:
            self.rows_out += 1
            self.downstream.push(element)

    def push_batch(self, items: list[StreamItem]) -> None:
        if self._batch_fn is None or not self._push_batch_generated(
            self._batch_fn, items
        ):
            self._push_batch_mixed(items)

    def _push_batch_mixed(self, items: list[StreamItem]) -> None:
        compiled = self._compiled
        evaluate = self.predicate.eval
        out: list[StreamItem] = []
        seen = 0
        for item in items:
            if isinstance(item, Punctuation):
                if out:
                    self.emit_batch(out)
                    out = []
                self.on_punctuation(item)
            else:
                seen += 1
                if compiled is not None:
                    if compiled(item.row.values) is True:
                        out.append(item)
                elif evaluate(item.row) is True:
                    out.append(item)
        self.rows_in += seen
        if out:
            self.emit_batch(out)


class ProjectOp(Operator):
    """Compute output columns; one output row per input row."""

    def __init__(
        self,
        items: list[tuple[Expr, str]],
        output_schema: Schema,
        downstream: StreamConsumer,
        input_schema: Schema | None = None,
    ):
        super().__init__(downstream)
        if len(items) != len(output_schema):
            raise ExecutionError("project items and output schema disagree")
        self.items = items
        self.output_schema = output_schema
        # One generated function computes the whole output tuple; a
        # generated batch loop serves push_batch (see FilterOp).
        self._compiled = (
            compile_projection([expr for expr, _ in items], input_schema)
            if input_schema is not None
            else None
        )
        self._batch_fn = (
            compile_fused_batch(
                [("project", [expr for expr, _ in items], output_schema)],
                input_schema,
                output_schema,
            )
            if input_schema is not None
            else None
        )
        # A compiled projection is purely positional and every output
        # row carries output_schema — incoming names are never read.
        self.consumes_values_only = self._compiled is not None

    def on_element(self, element: StreamElement) -> None:
        compiled = self._compiled
        if compiled is not None:
            row = Row.raw(self.output_schema, compiled(element.row.values))
        else:
            row = Row(
                self.output_schema,
                [expr.eval(element.row) for expr, _ in self.items],
                validate=False,
            )
        # emit() inlined: this is the hottest call site.
        self.rows_out += 1
        self.downstream.push(StreamElement(row, element.timestamp, element.source))

    def push_batch(self, items: list[StreamItem]) -> None:
        if self._batch_fn is None or not self._push_batch_generated(
            self._batch_fn, items
        ):
            self._push_batch_mixed(items)

    def _push_batch_mixed(self, items: list[StreamItem]) -> None:
        compiled = self._compiled
        schema = self.output_schema
        raw = Row.raw
        out: list[StreamItem] = []
        seen = 0
        for item in items:
            if isinstance(item, Punctuation):
                if out:
                    self.emit_batch(out)
                    out = []
                self.on_punctuation(item)
                continue
            seen += 1
            if compiled is not None:
                row = raw(schema, compiled(item.row.values))
            else:
                row = Row(
                    schema,
                    [expr.eval(item.row) for expr, _ in self.items],
                    validate=False,
                )
            out.append(StreamElement(row, item.timestamp, item.source))
        self.rows_in += seen
        if out:
            self.emit_batch(out)


class FusedOp(Operator):
    """A fused Filter/Project chain: one generated closure per element.

    The plan compiler collapses maximal runs of adjacent Select/Project
    nodes into one of these (see ``PlanCompiler(fuse=True)``). The whole
    chain — every predicate and every projection list, in dataflow
    order — runs as a single compiled function over the input value
    tuple (:func:`~repro.sql.compiled.compile_fused`), so a row passing
    an N-stage chain costs one Python call, one output Row and one
    StreamElement instead of N dispatches and up to N intermediate
    allocations. Chains without a projection stage forward the original
    element untouched, preserving row identity like ``FilterOp``.
    """

    def __init__(
        self,
        stages: list[FusedStage],
        output_schema: Schema,
        downstream: StreamConsumer,
        input_schema: Schema,
    ):
        super().__init__(downstream)
        self.stages = list(stages)
        self.output_schema = output_schema
        self.input_schema = input_schema
        self._fused = compile_fused(stages, input_schema)
        self._fused_batch = compile_fused_batch(stages, input_schema, output_schema)
        self._projects = any(stage[0] == "project" for stage in stages)
        # With a projection in the chain the incoming row is consumed
        # positionally and replaced; filter-only chains forward the
        # original element, so they are schema-oblivious only when the
        # downstream is too.
        self.consumes_values_only = self._projects or getattr(
            downstream, "consumes_values_only", False
        )

    @property
    def fused_stages(self) -> int:
        """How many Filter/Project stages this operator collapsed."""
        return len(self.stages)

    def on_element(self, element: StreamElement) -> None:
        values = self._fused(element.row.values)
        if values is None:
            return
        self.rows_out += 1
        if self._projects:
            element = StreamElement(
                Row.raw(self.output_schema, values), element.timestamp, element.source
            )
        self.downstream.push(element)

    def push_batch(self, items: list[StreamItem]) -> None:
        if not self._push_batch_generated(self._fused_batch, items):
            self._push_batch_mixed(items)

    def _push_batch_mixed(self, items: list[StreamItem]) -> None:
        run: list[StreamElement] = []
        for item in items:
            if isinstance(item, Punctuation):
                if run:
                    self._flush_run(run)
                    run = []
                self.on_punctuation(item)
            else:
                run.append(item)
        if run:
            self._flush_run(run)

    def _flush_run(self, run: list[StreamElement]) -> None:
        out: list[StreamElement] = []
        self._fused_batch(run, out)
        self.rows_in += len(run)
        if out:
            self.emit_batch(out)


class SymmetricHashJoin(Operator):
    """Windowed symmetric (hash) join.

    Each side buffers its live window. An arriving element probes the
    opposite buffer; matches are emitted with the *later* of the two
    timestamps (standard stream-join event time). Equi-join keys, when
    present, index the buffers so probing is O(matches); the residual
    predicate is applied to each candidate pair.

    Punctuation handling: the operator tracks the latest watermark per
    side and forwards ``min(left, right)`` when it advances, evicting
    expired rows from both buffers first.
    """

    def __init__(
        self,
        left_schema: Schema,
        right_schema: Schema,
        left_window: WindowSpec,
        right_window: WindowSpec,
        predicate: Expr | None,
        equi_keys: list[tuple[str, str]],
        downstream: StreamConsumer,
        compile_exprs: bool = True,
    ):
        super().__init__(downstream)
        self.left_schema = left_schema
        self.right_schema = right_schema
        self.left_window = left_window
        self.right_window = right_window
        self.predicate = predicate
        # Keys resolvable on each side, in matched order.
        self.left_keys = [lk for lk, _ in equi_keys]
        self.right_keys = [rk for _, rk in equi_keys]
        # Schema-bound compilation: key columns resolve to positions once
        # and the residual predicate runs over the joined value tuple.
        # Schemas the compiler cannot bind (duplicate names in the
        # concatenated schema, keys resolvable only per-row) fall back
        # to interpretation; anything else propagates.
        self._left_key_fn: Callable[[tuple], Any] | None = None
        self._right_key_fn: Callable[[tuple], Any] | None = None
        self._compiled_predicate = None
        self._joined_schema: Schema | None = None
        if compile_exprs:
            try:
                joined_schema = left_schema.concat(right_schema)
                self._left_key_fn = _positional_key(left_schema, self.left_keys)
                self._right_key_fn = _positional_key(right_schema, self.right_keys)
                if predicate is not None:
                    self._compiled_predicate = compile_expr(predicate, joined_schema)
                self._joined_schema = joined_schema
            except (SchemaError, UnknownFieldError):
                self._left_key_fn = self._right_key_fn = None
                self._compiled_predicate = None
                self._joined_schema = None
        self._left_buffer: dict[tuple, deque[StreamElement]] = {}
        self._right_buffer: dict[tuple, deque[StreamElement]] = {}
        self._left_fifo: deque[tuple[tuple, StreamElement]] = deque()
        self._right_fifo: deque[tuple[tuple, StreamElement]] = deque()
        self._left_watermark = float("-inf")
        self._right_watermark = float("-inf")
        self._sent_watermark = float("-inf")

    # -- plumbing ------------------------------------------------------
    def push_left(self, item: StreamItem) -> None:
        """Receive an item on the left input."""
        self._push_side(item, left=True)

    def push_right(self, item: StreamItem) -> None:
        """Receive an item on the right input."""
        self._push_side(item, left=False)

    def push(self, item: StreamItem) -> None:  # pragma: no cover - guarded misuse
        raise ExecutionError("SymmetricHashJoin requires push_left/push_right")

    class _SidePort:
        """Adapter presenting one side of the join as a StreamConsumer."""

        def __init__(self, join: "SymmetricHashJoin", left: bool):
            self._join = join
            self._left = left

        def push(self, item: StreamItem) -> None:
            self._join._push_side(item, left=self._left)

        def push_batch(self, items: list[StreamItem]) -> None:
            push_side = self._join._push_side
            left = self._left
            for item in items:
                push_side(item, left=left)

    @property
    def left_port(self) -> StreamConsumer:
        return SymmetricHashJoin._SidePort(self, True)

    @property
    def right_port(self) -> StreamConsumer:
        return SymmetricHashJoin._SidePort(self, False)

    # -- core ----------------------------------------------------------
    def _key(self, row: Row, names: list[str]) -> tuple:
        return tuple(row[name] for name in names)

    def _push_side(self, item: StreamItem, left: bool) -> None:
        if isinstance(item, Punctuation):
            if left:
                self._left_watermark = max(self._left_watermark, item.watermark)
            else:
                self._right_watermark = max(self._right_watermark, item.watermark)
            merged = min(self._left_watermark, self._right_watermark)
            if merged > self._sent_watermark:
                self._sent_watermark = merged
                self._evict(merged)
                self.downstream.push(Punctuation(merged))
            return

        self.rows_in += 1
        own_buffer = self._left_buffer if left else self._right_buffer
        other_buffer = self._right_buffer if left else self._left_buffer
        other_window = self.right_window if left else self.left_window

        key_fn = self._left_key_fn if left else self._right_key_fn
        if key_fn is not None:
            key = key_fn(item.row.values)
        else:
            key = self._key(item.row, self.left_keys if left else self.right_keys)
        own_buffer.setdefault(key, deque()).append(item)

        # ROWS windows bound the buffer by count, not time.
        own_window = self.left_window if left else self.right_window
        if own_window.kind is WindowKind.ROWS:
            fifo = self._left_fifo if left else self._right_fifo
            fifo.append((key, item))
            while len(fifo) > int(own_window.size):
                old_key, old_item = fifo.popleft()
                bucket = own_buffer.get(old_key)
                if bucket:
                    try:
                        bucket.remove(old_item)
                    except ValueError:
                        pass
                    if not bucket:
                        del own_buffer[old_key]

        for other in other_buffer.get(key, ()):  # equi-key candidates
            if not other_window.contains(other.timestamp, item.timestamp) and not (
                item.timestamp <= other.timestamp
            ):
                continue
            # Symmetric window check: each row must be live relative to the other.
            own_window = self.left_window if left else self.right_window
            if other.timestamp > item.timestamp and not own_window.contains(
                item.timestamp, other.timestamp
            ):
                continue
            left_row, right_row = (item.row, other.row) if left else (other.row, item.row)
            if self._joined_schema is not None:
                joined = Row.raw(self._joined_schema, left_row.values + right_row.values)
            else:
                joined = left_row.concat(right_row)
            if self.predicate is not None:
                if self._compiled_predicate is not None:
                    if self._compiled_predicate(joined.values) is not True:
                        continue
                elif self.predicate.eval(joined) is not True:
                    continue
            timestamp = max(item.timestamp, other.timestamp)
            self.emit(StreamElement(joined, timestamp))

    def _evict(self, watermark: float) -> None:
        for buffer, window in (
            (self._left_buffer, self.left_window),
            (self._right_buffer, self.right_window),
        ):
            if window.kind is WindowKind.UNBOUNDED:
                continue
            empty_keys = []
            for key, elements in buffer.items():
                while elements and window.expiry(elements[0].timestamp) < watermark:
                    elements.popleft()
                if not elements:
                    empty_keys.append(key)
            for key in empty_keys:
                del buffer[key]

    @property
    def buffered_rows(self) -> int:
        """Current state size (both sides) — used by state-bound tests."""
        return sum(len(d) for d in self._left_buffer.values()) + sum(
            len(d) for d in self._right_buffer.values()
        )

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["left_buffer"] = {k: list(d) for k, d in self._left_buffer.items()}
        state["right_buffer"] = {k: list(d) for k, d in self._right_buffer.items()}
        state["left_fifo"] = list(self._left_fifo)
        state["right_fifo"] = list(self._right_fifo)
        state["watermarks"] = (
            self._left_watermark,
            self._right_watermark,
            self._sent_watermark,
        )
        return state

    def state_restore(self, state: dict) -> None:
        super().state_restore(state)
        self._left_buffer = {k: deque(d) for k, d in state["left_buffer"].items()}
        self._right_buffer = {k: deque(d) for k, d in state["right_buffer"].items()}
        self._left_fifo = deque(state["left_fifo"])
        self._right_fifo = deque(state["right_fifo"])
        (
            self._left_watermark,
            self._right_watermark,
            self._sent_watermark,
        ) = state["watermarks"]


class _Accumulator:
    """Incremental state for one aggregate call within one group."""

    __slots__ = (
        "call", "name", "count", "total", "values", "distinct",
        "_counts_rows", "_sums", "_orders", "_dedups",
    )

    def __init__(self, call: AggregateCall):
        self.call = call
        self.name = call.name.upper()
        self.count = 0
        self.total: Any = 0
        self.values: list[Any] = []  # only kept for MIN/MAX/DISTINCT
        self.distinct: set[Any] = set()
        # Kind flags resolved once: add_value runs per row per call on
        # the hot accumulate path, so no string comparison happens there.
        self._counts_rows = call.argument is None  # COUNT(*)
        self._sums = self.name in ("SUM", "AVG")
        self._orders = self.name in ("MIN", "MAX")
        self._dedups = call.distinct

    def add(self, row: Row) -> None:
        if self._counts_rows:
            self.count += 1
            return
        self.add_value(self.call.argument.eval(row))

    def add_value(self, value: Any) -> None:
        """Fold one already-evaluated argument value (the compiled
        accumulate path — COUNT(*) receives a non-null dummy, so it
        lands in the plain count branch)."""
        if value is None:
            return
        if self._dedups:
            if value in self.distinct:
                return
            self.distinct.add(value)
        self.count += 1
        if self._sums:
            self.total += value
        elif self._orders:
            self.values.append(value)

    def result(self) -> Any:
        if self.name == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if self.name == "SUM":
            return self.total
        if self.name == "AVG":
            return self.total / self.count
        if self.name == "MIN":
            return min(self.values)
        if self.name == "MAX":
            return max(self.values)
        raise ExecutionError(f"unknown aggregate {self.name}")

    def clone(self) -> "_Accumulator":
        """Detached copy for checkpoints (the call itself is immutable)."""
        dup = _Accumulator(self.call)
        dup.count = self.count
        dup.total = self.total
        dup.values = list(self.values)
        dup.distinct = set(self.distinct)
        return dup


class AggregateOp(Operator):
    """Grouped, windowed aggregation.

    Two emission modes:

    * **Windowed** (RANGE window): elements are buffered; when the
      watermark passes a window boundary the window's groups are computed
      and emitted with the boundary timestamp. Slide defaults to the
      window size (tumbling) when unset.
    * **Punctuation-driven** (no window): on every punctuation, emit the
      aggregate over *all* rows seen so far (continuous running totals —
      the semantics SmartCIS uses for "total resources by user").
    """

    def __init__(
        self,
        group_by: list[tuple[Expr, str]],
        aggregates: list[tuple[AggregateCall, str]],
        output_schema: Schema,
        downstream: StreamConsumer,
        window: WindowSpec | None = None,
        input_schema: Schema | None = None,
    ):
        super().__init__(downstream)
        self.group_by = group_by
        self.aggregates = aggregates
        self.output_schema = output_schema
        self.window = window
        # Schema-bound compilation: the group keys and every aggregate
        # argument lower to one generated projection each, so the
        # accumulate loop touches only the row's value tuple. COUNT(*)
        # has no argument; a dummy literal keeps the projection aligned
        # (add_value ignores it).
        self._key_fn = (
            compile_projection([expr for expr, _ in group_by], input_schema)
            if input_schema is not None
            else None
        )
        self._args_fn = None
        if input_schema is not None:
            from repro.sql.expressions import Literal

            self._args_fn = compile_projection(
                [
                    call.argument if call.argument is not None else Literal(0)
                    for call, _ in aggregates
                ],
                input_schema,
            )
        # The whole fold — key extraction, NULL skipping, per-group
        # seen-sets for DISTINCT calls, state update — as one generated
        # loop: a window scan or a running-mode ingest batch costs one
        # Python call. None for exotic calls or the interpreted
        # baseline; those keep accumulator objects.
        fold = (
            compile_accumulate(
                [expr for expr, _ in group_by],
                [call for call, _ in aggregates],
                input_schema,
            )
            if input_schema is not None
            else None
        )
        self._fold, self._finalize = fold if fold is not None else (None, None)
        # Fully compiled aggregation is purely positional and emits rows
        # under output_schema only, so the scan-port renaming shim can be
        # elided beneath it (see Operator.consumes_values_only).
        self.consumes_values_only = (
            self._key_fn is not None and self._args_fn is not None
        )
        self._buffer: list[StreamElement] = []  # windowed mode
        self._groups: dict[tuple, list[_Accumulator]] = {}  # running mode
        self._next_boundary: float | None = None

    def _group_key(self, row: Row) -> tuple:
        if self._key_fn is not None:
            return self._key_fn(row.values)
        return tuple(expr.eval(row) for expr, _ in self.group_by)

    def _accumulate(
        self, row: Row, groups: dict[tuple, list[_Accumulator]]
    ) -> None:
        """Fold one row into its group's accumulators (shared by the
        running mode and the windowed boundary scan)."""
        args_fn = self._args_fn
        if args_fn is not None:
            values = row.values
            key = self._key_fn(values)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [_Accumulator(call) for call, _ in self.aggregates]
                groups[key] = accumulators
            for accumulator, value in zip(accumulators, args_fn(values)):
                accumulator.add_value(value)
            return
        key = self._group_key(row)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [_Accumulator(call) for call, _ in self.aggregates]
            groups[key] = accumulators
        for accumulator in accumulators:
            accumulator.add(row)

    # -- running mode ---------------------------------------------------
    def _running_add(self, element: StreamElement) -> None:
        if self._fold is not None:
            self._fold((element,), self._groups, _NEG_INF, _INF)
        else:
            self._accumulate(element.row, self._groups)

    def _emit_groups(self, timestamp: float, groups: dict) -> None:
        if not groups:
            return
        schema = self.output_schema
        finalize = self._finalize
        if finalize is not None:  # groups hold generated state lists
            out = [
                StreamElement(
                    Row(schema, list(key) + finalize(state), validate=False),
                    timestamp,
                )
                for key, state in groups.items()
            ]
        else:  # groups hold _Accumulator objects
            out = [
                StreamElement(
                    Row(
                        schema,
                        list(key) + [a.result() for a in accumulators],
                        validate=False,
                    ),
                    timestamp,
                )
                for key, accumulators in groups.items()
            ]
        # One batched dispatch per report: a window closing over many
        # groups clears the downstream (project/sink) in one call.
        self.emit_batch(out)

    # -- windowed mode ----------------------------------------------------
    def _window_slide(self) -> float:
        assert self.window is not None
        return self.window.slide or self.window.size

    def _emit_windows_until(self, watermark: float) -> None:
        assert self.window is not None
        slide = self._window_slide()
        if self._next_boundary is None:
            if not self._buffer:
                return
            first = min(e.timestamp for e in self._buffer)
            # The smallest slide multiple >= first. Windows are (start,
            # boundary], so a row exactly on a slide multiple belongs to
            # the window *ending* there — ceil keeps it (int()+1 pushed
            # it past its own window and truncated toward zero, dropping
            # boundary-exact and negative-timestamp rows entirely).
            boundary = math.ceil(first / slide) * slide
            self._next_boundary = boundary
        while self._next_boundary is not None and self._next_boundary <= watermark:
            if not self._buffer:
                # Nothing buffered: every window ending at or before the
                # watermark is empty (late arrivals would violate the
                # punctuation contract), so jump to the last boundary at
                # or before the watermark instead of iterating one slide
                # at a time — a watermark far in the future (an engine
                # flush, a long source gap) must not cost O(gap/slide).
                skip = math.floor(watermark / slide) * slide
                if skip > self._next_boundary:
                    self._next_boundary = skip
            boundary = self._next_boundary
            start = boundary - self.window.size
            self._close_window(start, boundary)
            self._next_boundary = boundary + slide
            # Evict rows no longer needed by any future window.
            horizon = self._next_boundary - self.window.size
            self._buffer = [e for e in self._buffer if e.timestamp > horizon]

    def _close_window(self, start: float, boundary: float) -> None:
        """Scan the buffer for the window ``(start, boundary]`` and emit
        its groups (overridden by :class:`PartialAggregateOp`)."""
        groups: dict = {}
        if self._fold is not None:
            # The whole window scan — time filter, key extraction,
            # accumulator updates — runs as one generated call.
            self._fold(self._buffer, groups, start, boundary)
        else:
            accumulate = self._accumulate
            for element in self._buffer:
                if start < element.timestamp <= boundary:
                    accumulate(element.row, groups)
        self._emit_groups(boundary, groups)

    # -- operator protocol -------------------------------------------------
    def on_element(self, element: StreamElement) -> None:
        if self.window is not None and self.window.kind is WindowKind.RANGE:
            self._buffer.append(element)
        else:
            self._running_add(element)

    def push_batch(self, items: list[StreamItem]) -> None:
        """Accumulate a whole batch with one dispatch.

        Windowed mode buffers elements until a boundary closes, so a
        punctuation-free ingest batch is a single C-level ``extend``;
        running mode folds each element into its group's accumulators
        within one call. Punctuations keep their in-batch position.
        """
        windowed = self.window is not None and self.window.kind is WindowKind.RANGE
        if not any(isinstance(item, Punctuation) for item in items):
            if windowed:
                self._buffer.extend(items)
            elif self._fold is not None:
                self._fold(items, self._groups, _NEG_INF, _INF)
            else:
                accumulate = self._accumulate
                groups = self._groups
                for item in items:
                    accumulate(item.row, groups)
            self.rows_in += len(items)
            return
        seen = 0
        for item in items:
            if isinstance(item, Punctuation):
                self.on_punctuation(item)
            elif windowed:
                seen += 1
                # Resolved per item: window emission *replaces* the
                # buffer list during eviction, so a cached bound append
                # would write into the evicted (dead) list.
                self._buffer.append(item)
            else:
                seen += 1
                self._running_add(item)
        self.rows_in += seen

    def on_punctuation(self, punctuation: Punctuation) -> None:
        if self.window is not None and self.window.kind is WindowKind.RANGE:
            self._emit_windows_until(punctuation.watermark)
        else:
            self._emit_groups(punctuation.watermark, self._groups)
        self.downstream.push(punctuation)

    def _copy_groups(self, groups: dict) -> dict:
        if self._finalize is not None:  # generated compile_accumulate state
            return {key: _copy_generated_state(state) for key, state in groups.items()}
        return {
            key: [accumulator.clone() for accumulator in accumulators]
            for key, accumulators in groups.items()
        }

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["buffer"] = list(self._buffer)
        state["next_boundary"] = self._next_boundary
        state["generated"] = self._finalize is not None
        state["groups"] = self._copy_groups(self._groups)
        return state

    def state_restore(self, state: dict) -> None:
        super().state_restore(state)
        if state["generated"] != (self._finalize is not None):
            raise ExecutionError(
                "checkpointed aggregate state shape does not match the "
                "recompiled operator (generated vs accumulator groups)"
            )
        self._buffer = list(state["buffer"])
        self._next_boundary = state["next_boundary"]
        self._groups = self._copy_groups(state["groups"])


class _PartialItem:
    """Stage-1 exchange state for one aggregate call within one group.

    Unlike :class:`_Accumulator` it keeps *encoded* state it can hand to
    the merge shard: tagged tuples that are marshal-safe and — for the
    float-folding kinds — carry element timestamps so the merge can
    re-fold values in global arrival order and reproduce the
    single-engine result bit for bit (float addition commutes but does
    not associate).

    Tags: ``("c", count)`` for COUNT; ``("m", extreme)`` for MIN/MAX
    (``None`` when no value arrived); ``("s", [(ts, value), ...])`` for
    SUM/AVG; ``("d", [(ts, value), ...])`` for DISTINCT calls
    (post-shard-dedup — the merge dedups again globally).
    """

    __slots__ = (
        "call", "_counts_rows", "_kind", "_max", "distinct",
        "count", "pairs", "values",
    )

    def __init__(self, call: AggregateCall):
        self.call = call
        name = call.name.upper()
        self._counts_rows = call.argument is None  # COUNT(*)
        if call.distinct:
            self._kind = "d"
        elif name in ("SUM", "AVG"):
            self._kind = "s"
        elif name in ("MIN", "MAX"):
            self._kind = "m"
        else:
            self._kind = "c"
        self._max = name == "MAX"
        self.distinct: set[Any] = set()  # persistent across segments
        self.count = 0
        self.pairs: list[tuple[float, Any]] = []
        self.values: list[Any] = []

    def add(self, timestamp: float, row: Row) -> None:
        if self._counts_rows:
            self.count += 1
            return
        value = self.call.argument.eval(row)
        if value is None:
            return
        kind = self._kind
        if kind == "d":
            if value in self.distinct:
                return
            self.distinct.add(value)
            self.pairs.append((timestamp, value))
        elif kind == "s":
            self.pairs.append((timestamp, value))
        elif kind == "m":
            self.values.append(value)
        else:
            self.count += 1

    def take(self) -> tuple:
        """Encode and reset the state gathered since the last call.

        Running mode ships *deltas* per punctuation (the merge shard
        keeps the cumulative accumulators); the DISTINCT seen-set is the
        one piece that persists, so a value is shipped at most once per
        shard. Windowed mode builds a fresh item per window scan, so the
        single ``take`` covers the whole window.
        """
        kind = self._kind
        if kind in ("d", "s"):
            out = (kind, self.pairs)
            self.pairs = []
            return out
        if kind == "m":
            if not self.values:
                return ("m", None)
            out = ("m", max(self.values) if self._max else min(self.values))
            self.values = []
            return out
        out = ("c", self.count)
        self.count = 0
        return out

    def snapshot(self) -> dict:
        return {
            "distinct": set(self.distinct),
            "count": self.count,
            "pairs": list(self.pairs),
            "values": list(self.values),
        }

    def restore(self, state: dict) -> None:
        self.distinct = set(state["distinct"])
        self.count = state["count"]
        self.pairs = list(state["pairs"])
        self.values = list(state["values"])


class PartialAggregateOp(AggregateOp):
    """Stage 1 of a two-phase (exchanged) aggregation.

    Aggregates its shard's slice of the input but emits encoded
    :class:`_PartialItem` payloads instead of finalized values, under
    the partial schema (group keys + one payload column per call).
    Always interpreted (``input_schema=None``): the fold must see
    element timestamps, which the generated accumulate loop drops.

    * **Windowed**: window boundaries are absolute slide-grid multiples,
      identical on every shard, so each closing window's partials are
      emitted with the boundary timestamp and merge segment-locally.
    * **Running**: per punctuation, every group touched this segment
      emits the *delta* since the previous punctuation (the merge shard
      owns the running totals).
    """

    def __init__(
        self,
        group_by: list[tuple[Expr, str]],
        aggregates: list[tuple[AggregateCall, str]],
        output_schema: Schema,
        downstream: StreamConsumer,
        window: WindowSpec | None = None,
    ):
        super().__init__(
            group_by, aggregates, output_schema, downstream, window, None
        )
        self._pgroups: dict[tuple, list[_PartialItem]] = {}  # running mode
        self._ptouched: dict[tuple, None] = {}  # keys with deltas, in first-touch order

    # -- running mode ---------------------------------------------------
    def _running_add(self, element: StreamElement) -> None:
        key = self._group_key(element.row)
        items = self._pgroups.get(key)
        if items is None:
            items = [_PartialItem(call) for call, _ in self.aggregates]
            self._pgroups[key] = items
        self._ptouched[key] = None
        timestamp = element.timestamp
        for item in items:
            item.add(timestamp, element.row)

    def _emit_deltas(self, watermark: float) -> None:
        if not self._ptouched:
            return
        schema = self.output_schema
        out = [
            StreamElement(
                Row(
                    schema,
                    list(key) + [item.take() for item in self._pgroups[key]],
                    validate=False,
                ),
                watermark,
            )
            for key in self._ptouched
        ]
        self._ptouched = {}
        self.emit_batch(out)

    # -- windowed mode --------------------------------------------------
    def _close_window(self, start: float, boundary: float) -> None:
        groups: dict[tuple, list[_PartialItem]] = {}
        for element in self._buffer:
            if start < element.timestamp <= boundary:
                key = self._group_key(element.row)
                items = groups.get(key)
                if items is None:
                    items = [_PartialItem(call) for call, _ in self.aggregates]
                    groups[key] = items
                for item in items:
                    item.add(element.timestamp, element.row)
        if not groups:
            return
        schema = self.output_schema
        self.emit_batch(
            [
                StreamElement(
                    Row(
                        schema,
                        list(key) + [item.take() for item in items],
                        validate=False,
                    ),
                    boundary,
                )
                for key, items in groups.items()
            ]
        )

    # -- operator protocol ----------------------------------------------
    def push_batch(self, items: list[StreamItem]) -> None:
        # The base fast paths fold rows without their timestamps; the
        # partial fold needs them, so batches dispatch per item.
        Operator.push_batch(self, items)

    def on_punctuation(self, punctuation: Punctuation) -> None:
        if self.window is not None and self.window.kind is WindowKind.RANGE:
            self._emit_windows_until(punctuation.watermark)
        else:
            self._emit_deltas(punctuation.watermark)
        self.downstream.push(punctuation)

    def state_snapshot(self) -> dict:
        state = Operator.state_snapshot(self)
        state["buffer"] = list(self._buffer)
        state["next_boundary"] = self._next_boundary
        state["pgroups"] = {
            key: [item.snapshot() for item in items]
            for key, items in self._pgroups.items()
        }
        state["touched"] = list(self._ptouched)
        return state

    def state_restore(self, state: dict) -> None:
        Operator.state_restore(self, state)
        self._buffer = list(state["buffer"])
        self._next_boundary = state["next_boundary"]
        pgroups: dict[tuple, list[_PartialItem]] = {}
        for key, snaps in state["pgroups"].items():
            items = [_PartialItem(call) for call, _ in self.aggregates]
            for item, snap in zip(items, snaps):
                item.restore(snap)
            pgroups[key] = items
        self._pgroups = pgroups
        self._ptouched = dict.fromkeys(state["touched"])


def _pair_ts(pair: tuple[float, Any]) -> float:
    return pair[0]


class MergeAggregateOp(Operator):
    """Stage 2 of a two-phase aggregation: fold shard partials.

    Input rows carry group-key values followed by encoded partial
    payloads (:meth:`_PartialItem.take`); output restores the original
    aggregate schema via the plain :class:`_Accumulator` semantics.

    * **Windowed**: every shard closes window *W* within the same
      punctuation segment (boundaries are absolute slide-grid
      multiples), so merging is segment-local — group contributions by
      (boundary, key), fold, emit at the boundary, clear.
    * **Running**: contributions are per-segment deltas; persistent
      per-key accumulators fold them, and every punctuation re-emits all
      groups — the single-engine running-totals contract.

    Timestamped payloads ("s"/"d") from different shards are re-sorted
    into global arrival order before folding, so float sums reproduce
    the baseline bit for bit; dedup and extremes commute on their own.
    """

    def __init__(
        self,
        key_count: int,
        aggregates: list[tuple[AggregateCall, str]],
        output_schema: Schema,
        downstream: StreamConsumer,
        windowed: bool,
    ):
        super().__init__(downstream)
        self._key_count = key_count
        self.aggregates = aggregates
        self.output_schema = output_schema
        self._windowed = windowed
        # windowed: boundary -> key -> [payload slice per arriving row]
        self._windows: dict[float, dict[tuple, list]] = {}
        # running: this segment's deltas, and the cumulative groups
        self._pending: dict[tuple, list] = {}
        self._groups: dict[tuple, list[_Accumulator]] = {}

    def _fold_parts(self, accumulators: list[_Accumulator], contributions: list) -> None:
        for index, accumulator in enumerate(accumulators):
            pairs: list[tuple[float, Any]] = []
            for parts in contributions:
                tag, payload = parts[index]
                if tag == "c":
                    accumulator.count += payload
                elif tag == "m":
                    if payload is not None:
                        accumulator.values.append(payload)
                        accumulator.count += 1
                else:  # "s" / "d": one shard's (ts, value) run
                    pairs.extend(payload)
            if pairs:
                pairs.sort(key=_pair_ts)
                add_value = accumulator.add_value
                for _, value in pairs:
                    add_value(value)

    def _close_windows(self) -> None:
        if not self._windows:
            return
        schema = self.output_schema
        for boundary in sorted(self._windows):
            out = []
            for key, contributions in self._windows[boundary].items():
                accumulators = [_Accumulator(call) for call, _ in self.aggregates]
                self._fold_parts(accumulators, contributions)
                out.append(
                    StreamElement(
                        Row(
                            schema,
                            list(key) + [a.result() for a in accumulators],
                            validate=False,
                        ),
                        boundary,
                    )
                )
            self.emit_batch(out)
        self._windows = {}

    def _merge_running(self, watermark: float) -> None:
        for key, contributions in self._pending.items():
            accumulators = self._groups.get(key)
            if accumulators is None:
                accumulators = [_Accumulator(call) for call, _ in self.aggregates]
                self._groups[key] = accumulators
            self._fold_parts(accumulators, contributions)
        self._pending = {}
        if not self._groups:
            return
        schema = self.output_schema
        self.emit_batch(
            [
                StreamElement(
                    Row(
                        schema,
                        list(key) + [a.result() for a in accumulators],
                        validate=False,
                    ),
                    watermark,
                )
                for key, accumulators in self._groups.items()
            ]
        )

    def on_element(self, element: StreamElement) -> None:
        values = element.row.values
        key = tuple(values[: self._key_count])
        parts = values[self._key_count :]
        if self._windowed:
            bucket = self._windows.setdefault(element.timestamp, {})
            bucket.setdefault(key, []).append(parts)
        else:
            self._pending.setdefault(key, []).append(parts)

    def on_punctuation(self, punctuation: Punctuation) -> None:
        if self._windowed:
            self._close_windows()
        else:
            self._merge_running(punctuation.watermark)
        self.downstream.push(punctuation)

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        # Payload tuples are handed off by _PartialItem.take and never
        # mutated afterwards, so contribution lists copy shallowly.
        state["windows"] = {
            boundary: {key: list(c) for key, c in groups.items()}
            for boundary, groups in self._windows.items()
        }
        state["pending"] = {key: list(c) for key, c in self._pending.items()}
        state["groups"] = {
            key: [a.clone() for a in accumulators]
            for key, accumulators in self._groups.items()
        }
        return state

    def state_restore(self, state: dict) -> None:
        super().state_restore(state)
        self._windows = {
            boundary: {key: list(c) for key, c in groups.items()}
            for boundary, groups in state["windows"].items()
        }
        self._pending = {key: list(c) for key, c in state["pending"].items()}
        self._groups = {
            key: [a.clone() for a in accumulators]
            for key, accumulators in state["groups"].items()
        }


class DistinctOp(Operator):
    """Forward only the first occurrence of each distinct row.

    State is the set of seen rows; for windowed queries put the window
    upstream (the join/aggregate) so distinct state stays proportional to
    the distinct-value count, which is small for SmartCIS queries (rooms,
    desks, machine names).
    """

    def __init__(self, downstream: StreamConsumer):
        super().__init__(downstream)
        self._seen: set[tuple] = set()
        # Dedup keys on the value tuple and forwards elements unchanged:
        # schema-oblivious exactly when everything downstream is.
        self.consumes_values_only = getattr(downstream, "consumes_values_only", False)

    def on_element(self, element: StreamElement) -> None:
        key = element.row.values
        if key in self._seen:
            return
        self._seen.add(key)
        self.emit(element)

    def push_batch(self, items: list[StreamItem]) -> None:
        """Deduplicate a whole batch with one dispatch, forwarding the
        survivors as one output batch per punctuation-free run."""
        seen = self._seen
        out: list[StreamElement] = []
        count = 0
        for item in items:
            if isinstance(item, Punctuation):
                if out:
                    self.emit_batch(out)
                    out = []
                self.on_punctuation(item)
                continue
            count += 1
            key = item.row.values
            if key not in seen:
                seen.add(key)
                out.append(item)
        self.rows_in += count
        if out:
            self.emit_batch(out)

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["seen"] = set(self._seen)
        return state

    def state_restore(self, state: dict) -> None:
        super().state_restore(state)
        self._seen = set(state["seen"])


class OrderByOp(Operator):
    """Sort each punctuation-delimited batch.

    Streams never end, so a total sort is impossible; CQL-style engines
    sort per report. Elements arriving between two punctuations form one
    batch, sorted and re-emitted when the punctuation arrives.
    """

    def __init__(
        self,
        items: list[OrderItem],
        downstream: StreamConsumer,
        input_schema: Schema | None = None,
    ):
        super().__init__(downstream)
        self.items = items
        self._batch: list[StreamElement] = []
        self._key_fns = (
            [compile_expr(item.expr, input_schema) for item in items]
            if input_schema is not None
            else None
        )

    def on_element(self, element: StreamElement) -> None:
        self._batch.append(element)

    def push_batch(self, items: list[StreamItem]) -> None:
        """Buffer a punctuation-free batch with one ``extend``; batches
        containing punctuations keep per-item order (each punctuation
        sorts and flushes the rows buffered before it)."""
        if not any(isinstance(item, Punctuation) for item in items):
            self._batch.extend(items)
            self.rows_in += len(items)
            return
        push = self.push
        for item in items:
            push(item)

    def on_punctuation(self, punctuation: Punctuation) -> None:
        decorated = []
        for index, element in enumerate(self._batch):
            decorated.append((self._sort_key(element.row), index, element))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        for _, _, element in decorated:
            self.emit(element)
        self._batch.clear()
        self.downstream.push(punctuation)

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["batch"] = list(self._batch)
        return state

    def state_restore(self, state: dict) -> None:
        super().state_restore(state)
        self._batch = list(state["batch"])

    def _sort_key(self, row: Row) -> tuple:
        key: list[Any] = []
        fns = self._key_fns
        values = row.values if fns is not None else ()
        for position, item in enumerate(self.items):
            value = fns[position](values) if fns is not None else item.expr.eval(row)
            # NULLs sort first ascending, last descending.
            null_rank = 0 if value is None else 1
            if item.ascending:
                key.append((null_rank, value if value is not None else 0))
            else:
                key.append(_Descending((null_rank, value if value is not None else 0)))
        return tuple(key)


class _Descending:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and self.value == other.value


class LimitOp(Operator):
    """Emit at most ``count`` rows per punctuation batch."""

    def __init__(self, count: int, downstream: StreamConsumer):
        super().__init__(downstream)
        self.count = count
        self._emitted_in_batch = 0

    def on_element(self, element: StreamElement) -> None:
        if self._emitted_in_batch < self.count:
            self._emitted_in_batch += 1
            self.emit(element)

    def push_batch(self, items: list[StreamItem]) -> None:
        """Apply the per-report budget across a whole batch in one
        dispatch; accepted prefixes forward as output batches."""
        out: list[StreamElement] = []
        count = 0
        for item in items:
            if isinstance(item, Punctuation):
                if out:
                    self.emit_batch(out)
                    out = []
                self.on_punctuation(item)
                continue
            count += 1
            if self._emitted_in_batch < self.count:
                self._emitted_in_batch += 1
                out.append(item)
        self.rows_in += count
        if out:
            self.emit_batch(out)

    def on_punctuation(self, punctuation: Punctuation) -> None:
        self._emitted_in_batch = 0
        self.downstream.push(punctuation)

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["emitted_in_batch"] = self._emitted_in_batch
        return state

    def state_restore(self, state: dict) -> None:
        super().state_restore(state)
        self._emitted_in_batch = state["emitted_in_batch"]


class OutputOp(Operator):
    """Deliver results to a display callback and forward them downstream.

    ``every`` throttles delivery: at most one batch per ``every`` seconds
    of stream time (the OUTPUT TO ... EVERY clause).
    """

    def __init__(
        self,
        display: str,
        deliver: Callable[[str, StreamElement], None],
        downstream: StreamConsumer,
        every: float | None = None,
    ):
        super().__init__(downstream)
        self.display = display
        self.deliver = deliver
        self.every = every
        self._last_delivery = float("-inf")

    def on_element(self, element: StreamElement) -> None:
        if self.every is None or element.timestamp - self._last_delivery >= self.every:
            self.deliver(self.display, element)
            if self.every is not None:
                self._last_delivery = element.timestamp
        self.emit(element)

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["last_delivery"] = self._last_delivery
        return state

    def state_restore(self, state: dict) -> None:
        super().state_restore(state)
        self._last_delivery = state["last_delivery"]
