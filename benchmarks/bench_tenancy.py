"""Multi-tenancy benchmark: 1k+ standing queries under plan multiplexing.

The workload is the paper's "millions of users" scenario scaled to a
process: ~20 statement templates (filter/project tiers, windowed
aggregates, DISTINCT, row windows) instantiated into 1000+ concurrent
standing queries over one stream. Each configuration runs twice —

* **shared**   — ``connect()`` (the default): repeated SQL text hits the
  session plan cache, and structurally identical plans execute one
  shared operator chain fanned out through a tee
  (:mod:`repro.stream.multiplex`);
* **unshared** — ``connect(share_plans=False)``: the same plan cache,
  but every query builds and runs a private operator pipeline.

Measured per mode: admission rate (``session.query()`` calls/s),
steady-state ingest throughput with all queries standing, and the
per-query *marginal* ingest cost (the slope between a small and a full
tenant population). Result identity between the modes is asserted at
every scale; the acceptance bars — admission ≥ 5x faster shared and a
strictly lower shared marginal cost — only at full scale.

Results are printed and written to ``BENCH_tenancy.json`` (directory
override: ``REPRO_BENCH_DIR``; workload scale: ``REPRO_BENCH_SCALE``).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.api import StreamSource, connect
from repro.data import DataType, Schema

ARTIFACT_NAME = "BENCH_tenancy.json"

READINGS = Schema.of(
    ("room", DataType.STRING),
    ("host", DataType.STRING),
    ("temp", DataType.FLOAT),
    ("load", DataType.FLOAT),
)

#: ~20 distinct statements; 1000 tenants cycle through them, so each
#: template backs ~50 standing queries. All scan the one stream source,
#: so every statement is shared-eligible.
TEMPLATES = [
    # Filter/project tiers (stateless fused chains).
    "select r.host, r.temp from Readings r where r.temp > 10.0",
    "select r.host, r.temp from Readings r where r.temp > 25.0",
    "select r.host, r.temp from Readings r where r.temp > 40.0",
    "select r.host, r.temp from Readings r where r.temp > 55.0",
    "select r.room, r.host from Readings r where r.load < 0.25",
    "select r.room, r.host from Readings r where r.load < 0.75",
    "select r.host, r.temp * 1.8 + 32.0 as fahrenheit from Readings r "
    "where r.temp > 30.0",
    "select r.host, r.load * 100.0 as pct from Readings r where r.load >= 0.5",
    "select r.room, r.temp from Readings r where r.room like 'lab%'",
    "select r.host from Readings r where r.temp > 20.0 and r.load < 0.9",
    # Windowed aggregates (stateful chains).
    "select r.room, count(*) as n from Readings r "
    "[range 10 seconds slide 10 seconds] group by r.room",
    "select r.room, avg(r.temp) as mean from Readings r "
    "[range 10 seconds slide 10 seconds] group by r.room",
    "select r.host, count(*) as n, sum(r.temp) as total from Readings r "
    "[range 20 seconds slide 20 seconds] group by r.host",
    "select r.host, min(r.temp) as lo, max(r.temp) as hi from Readings r "
    "[range 20 seconds slide 10 seconds] group by r.host",
    "select count(*) as n, avg(r.load) as mean from Readings r "
    "[range 10 seconds slide 10 seconds]",
    "select r.room, count(*) as n from Readings r "
    "[range 20 seconds slide 20 seconds] where r.temp > 15.0 group by r.room",
    # Keyed DISTINCT.
    "select distinct r.host, r.room from Readings r where r.temp > 35.0",
    "select distinct r.room from Readings r where r.load > 0.1",
    # Row windows.
    "select r.host, r.temp from Readings r [rows 25] where r.load > 0.3",
    "select r.room, avg(r.temp) as mean from Readings r "
    "[rows 50] group by r.room",
]


def _batches(row_count: int, batch_size: int = 100):
    """Deterministic ingest batches: (rows, stamps, watermark) triples."""
    rooms = ["lab1", "lab2", "office3", "lab4"]
    batches = []
    clock = 0.0
    for base in range(0, row_count, batch_size):
        rows, stamps = [], []
        for i in range(base, min(base + batch_size, row_count)):
            rows.append(
                {
                    "room": rooms[i % 4],
                    "host": f"ws{i % 16}",
                    "temp": float(i % 70),
                    "load": (i % 100) / 100.0,
                }
            )
            clock += 0.1
            stamps.append(round(clock, 3))
        batches.append((rows, stamps, round(clock + 0.05, 3)))
    return batches


def _measure(share: bool, n_queries: int, batches) -> dict:
    """Admit ``n_queries`` standing queries, then drive every batch."""
    session = connect(share_plans=share)
    session.attach(StreamSource("Readings", READINGS, rate=10.0))
    statements = [TEMPLATES[i % len(TEMPLATES)] for i in range(n_queries)]
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        cursors = [session.query(sql) for sql in statements]
        admit_s = time.perf_counter() - start
        start = time.perf_counter()
        for rows, stamps, watermark in batches:
            session.push_many("Readings", rows, stamps)
            session.punctuate(watermark)
        ingest_s = time.perf_counter() - start
    finally:
        gc.enable()
    counts = [len(cursor.results()) for cursor in cursors]
    stats = session.stats()
    session.close()
    return {
        "share": share,
        "queries": n_queries,
        "admit_s": admit_s,
        "ingest_s": ingest_s,
        "result_counts": counts,
        "stats": stats,
    }


def _marginal_us(full: dict, small: dict, rows: int) -> float:
    """Ingest cost added by each extra standing query, in us per row."""
    extra_queries = full["queries"] - small["queries"]
    return (full["ingest_s"] - small["ingest_s"]) / (extra_queries * rows) * 1e6


def run_benchmarks(scale: float | None = None) -> dict:
    if scale is None:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    n_full = max(40, int(1000 * scale))
    n_small = max(8, n_full // 10)
    row_count = max(100, int(600 * scale))
    batches = _batches(row_count)

    # Warm the compile and ingest code paths so neither mode pays
    # first-call import/JIT-cache costs inside its timed region.
    _measure(True, len(TEMPLATES), batches[:1])
    _measure(False, len(TEMPLATES), batches[:1])

    shared_full = _measure(True, n_full, batches)
    unshared_full = _measure(False, n_full, batches)
    shared_small = _measure(True, n_small, batches)
    unshared_small = _measure(False, n_small, batches)

    assert shared_full["result_counts"] == unshared_full["result_counts"], (
        "shared execution changed standing-query results"
    )

    shared_qps = n_full / shared_full["admit_s"]
    unshared_qps = n_full / unshared_full["admit_s"]
    rows_total = row_count
    shared_marginal = _marginal_us(shared_full, shared_small, rows_total)
    unshared_marginal = _marginal_us(unshared_full, unshared_small, rows_total)
    return {
        "benchmark": "tenancy",
        "scale": scale,
        "templates": len(TEMPLATES),
        "queries": n_full,
        "rows": rows_total,
        "result_rows": sum(shared_full["result_counts"]),
        "admission": {
            "shared_qps": round(shared_qps),
            "unshared_qps": round(unshared_qps),
            "speedup": round(shared_qps / unshared_qps, 2),
        },
        "ingest": {
            "shared_s": round(shared_full["ingest_s"], 6),
            "unshared_s": round(unshared_full["ingest_s"], 6),
            "shared_rows_per_s": round(rows_total / shared_full["ingest_s"]),
            "unshared_rows_per_s": round(rows_total / unshared_full["ingest_s"]),
            "speedup": round(
                unshared_full["ingest_s"] / shared_full["ingest_s"], 2
            ),
        },
        "marginal_per_query": {
            "shared_us_per_row": round(shared_marginal, 4),
            "unshared_us_per_row": round(unshared_marginal, 4),
            "ratio": round(unshared_marginal / shared_marginal, 2)
            if shared_marginal > 0
            else None,
        },
        "shared_stats": shared_full["stats"],
    }


def write_artifact(results: dict, directory: str | os.PathLike | None = None) -> Path:
    if directory is None:
        directory = os.environ.get(
            "REPRO_BENCH_DIR", Path(__file__).resolve().parent.parent
        )
    path = Path(directory) / ARTIFACT_NAME
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def test_tenancy_multiplexing(table_printer):
    results = run_benchmarks()
    path = write_artifact(results)
    admission = results["admission"]
    ingest = results["ingest"]
    marginal = results["marginal_per_query"]
    table_printer(
        f"{results['queries']} standing queries from {results['templates']} "
        f"templates (artifact: {path})",
        ["mode", "admission q/s", "ingest rows/s", "marginal us/row/query"],
        [
            [
                "shared",
                admission["shared_qps"],
                ingest["shared_rows_per_s"],
                marginal["shared_us_per_row"],
            ],
            [
                "unshared",
                admission["unshared_qps"],
                ingest["unshared_rows_per_s"],
                marginal["unshared_us_per_row"],
            ],
        ],
    )
    print(
        f"  admission speedup: {admission['speedup']}x, "
        f"ingest speedup: {ingest['speedup']}x"
    )
    # Acceptance bars hold only at full scale — smoke workloads admit
    # too few queries for the fixed per-session costs to amortize.
    if results["scale"] >= 1.0:
        assert admission["speedup"] >= 5.0, (
            f"shared admission only {admission['speedup']}x faster; expected >= 5x"
        )
        assert marginal["shared_us_per_row"] < marginal["unshared_us_per_row"], (
            "sharing did not lower the per-query marginal ingest cost"
        )
