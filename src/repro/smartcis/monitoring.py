"""Monitoring state: the control-logic tier's view of the building.

Paper §2 separates a smart building into "data acquisition and
integration, control logic, and a user-interface view". This module is
the control-logic tier's state: the latest observation from every
monitoring stream (room status, seat status, machine temperatures,
machine state, power), timestamped, with staleness accounting.

The store is fed by the acquisition substrate — sensor tuples surfacing
at the basestation and wrapper tuples entering the stream engine — and
read by the GUI, the free-machine finder and the visitor guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Seat light threshold: below this the chair is shadowed (someone seated)
#: or the room is dark; either way the machine is not "free".
SEAT_FREE_LIGHT_THRESHOLD = 100.0


@dataclass
class Observation:
    """One latest-value cell."""

    value: Any
    time: float


class BuildingStateStore:
    """Latest-value cache over the monitoring streams.

    Keys are chosen to match the demo's questions: room status by room,
    seat status by (room, desk), machine temperature by host, machine
    state by host, power by host.
    """

    def __init__(self) -> None:
        self.room_status: dict[str, Observation] = {}
        self.seat_status: dict[tuple[str, str], Observation] = {}
        self.machine_temp: dict[str, Observation] = {}
        self.machine_state: dict[str, Observation] = {}
        self.power: dict[str, Observation] = {}
        self.updates = 0

    # ------------------------------------------------------------------
    # Ingestion (wired to streams by the application)
    # ------------------------------------------------------------------
    def on_area_sensor(self, values: dict[str, Any], time: float) -> None:
        self.room_status[str(values["room"])] = Observation(str(values["status"]), time)
        self.updates += 1

    def on_seat_sensor(self, values: dict[str, Any], time: float) -> None:
        key = (str(values["room"]), str(values["desk"]))
        self.seat_status[key] = Observation(str(values["status"]), time)
        self.updates += 1

    def on_workstation_temp(self, values: dict[str, Any], time: float) -> None:
        self.machine_temp[str(values["host"])] = Observation(float(values["temp_c"]), time)
        self.updates += 1

    def on_machine_state(self, values: dict[str, Any], time: float) -> None:
        self.machine_state[str(values["host"])] = Observation(dict(values), time)
        self.updates += 1

    def on_power(self, values: dict[str, Any], time: float) -> None:
        self.power[str(values["host"])] = Observation(float(values["watts"]), time)
        self.updates += 1

    # ------------------------------------------------------------------
    # Queries the control logic asks
    # ------------------------------------------------------------------
    def room_is_open(self, room: str) -> bool:
        observation = self.room_status.get(room)
        return observation is not None and observation.value == "open"

    def seat_is_free(self, room: str, desk: str) -> bool:
        observation = self.seat_status.get((room, desk))
        return observation is not None and observation.value == "free"

    def open_rooms(self) -> list[str]:
        return sorted(r for r in self.room_status if self.room_is_open(r))

    def free_seats(self) -> list[tuple[str, str]]:
        """(room, desk) pairs that are free *and* in an open room."""
        return sorted(
            key
            for key in self.seat_status
            if self.seat_is_free(*key) and self.room_is_open(key[0])
        )

    def hottest_machines(self, count: int = 5) -> list[tuple[str, float]]:
        pairs = [(host, obs.value) for host, obs in self.machine_temp.items()]
        pairs.sort(key=lambda p: (-p[1], p[0]))
        return pairs[:count]

    def staleness(self, now: float) -> dict[str, float]:
        """Age of the oldest observation per category (bench E9 input)."""
        out: dict[str, float] = {}
        for label, table in (
            ("room_status", self.room_status),
            ("seat_status", self.seat_status),
            ("machine_temp", self.machine_temp),
            ("machine_state", self.machine_state),
            ("power", self.power),
        ):
            if table:
                out[label] = max(now - obs.time for obs in table.values())
        return out
