"""Experiment E5 — cross-machine resource accounting.

Paper §2: "We can monitor the total resources used (energy, memory,
CPU) by any user or application, even across machines."

Runs the per-room windowed rollups (CPU/memory from the soft sensors,
watts from the PDU stream joined to machine locations) on a live
deployment and reports the produced series; benchmarks group-by
throughput on the stream engine.

Shape: every room with machines appears in the rollup; the machine
room's servers dominate power; totals scale with machine count.
"""

import pytest

from repro import SmartCIS
from repro.smartcis.queries import power_by_room_sql, resources_by_room_sql


def test_e5_per_room_rollups(table_printer, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    app = SmartCIS(seed=31, lab_count=3, desks_per_lab=3, server_count=4)
    app.start()
    resources = app.stream_engine.execute(
        app.builder.build_sql(resources_by_room_sql(window_seconds=60))
    )
    power = app.stream_engine.execute(
        app.builder.build_sql(power_by_room_sql(window_seconds=60))
    )
    # Occupy two desks so interactive load shows up.
    app.building.room("lab1").desk("d1").occupied = True
    app.building.room("lab2").desk("d2").occupied = True
    app.simulator.run_for(125.0)

    latest_resources = {r["ms.room"]: r for r in resources.results[-8:]}
    latest_power = {r["m.room"]: r for r in power.results[-8:]}
    rows = []
    for room in sorted(set(latest_resources) | set(latest_power)):
        res = latest_resources.get(room)
        pow_row = latest_power.get(room)
        rows.append(
            [
                room,
                f"{res['total_cpu']:.2f}" if res else "-",
                f"{res['total_mem']:.0f}" if res else "-",
                f"{pow_row['total_watts']:.0f}" if pow_row else "-",
            ]
        )
    table_printer(
        "E5: per-room resource totals (last 60 s window)",
        ["room", "Σ cpu", "Σ mem (MB)", "Σ watts"],
        rows,
    )
    machine_rooms = {s.room for s in app.deployment.machine_specs}
    assert machine_rooms <= set(latest_power), "every machine room accounted"
    # Servers dominate power.
    watts = {room: latest_power[room]["total_watts"] for room in latest_power}
    assert watts["machineroom"] == max(watts.values())


def test_e5_groupby_throughput(benchmark):
    app = SmartCIS(seed=31, lab_count=2)
    app.start()
    handle = app.stream_engine.execute(
        app.builder.build_sql(
            "select ms.room, sum(ms.cpu) as c, sum(ms.memory_mb) as m, count(*) as n "
            "from MachineState ms group by ms.room"
        )
    )
    batch = [
        {
            "host": f"ws{i}",
            "room": f"room{i % 8}",
            "desk": "d1",
            "jobs": 1,
            "users": 1,
            "cpu": 0.5,
            "memory_mb": 512.0,
            "web_requests": 0,
        }
        for i in range(1000)
    ]
    clock = {"t": 1000.0}

    def push_batch():
        clock["t"] += 1.0
        for values in batch:
            app.stream_engine.push("MachineState", values, clock["t"])
        app.stream_engine.punctuate(clock["t"], sources=["MachineState"])

    benchmark(push_batch)
    assert handle.results
