"""Source & device catalog: schemas, locations, statistics, deployment facts."""

from repro.catalog.catalog import (
    Catalog,
    DeviceInfo,
    DisplayEntry,
    EngineLocation,
    NetworkInfo,
    SourceEntry,
    SourceKind,
    SourceStatistics,
    ViewEntry,
)

__all__ = [
    "Catalog",
    "SourceEntry",
    "SourceKind",
    "SourceStatistics",
    "EngineLocation",
    "DeviceInfo",
    "NetworkInfo",
    "ViewEntry",
    "DisplayEntry",
]
