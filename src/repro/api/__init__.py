"""The unified Session API: one façade from SQL text to live results.

::

    from repro.api import connect, StreamSource

    with connect() as session:
        session.attach(StreamSource("Readings", schema, rate=10.0))
        with session.query("select r.room from Readings r where r.temp > 30") as cur:
            session.push("Readings", {"room": "lab1", "temp": 31.0}, 1.0)
            print(cur.results())

See :mod:`repro.api.session` for the routing rules and the error
contract (:class:`~repro.errors.QueryError`,
:class:`~repro.errors.SourceError`,
:class:`~repro.errors.SessionClosedError`).
"""

from repro.errors import QueryError, SessionClosedError, SourceError
from repro.api.backends import (
    BatchBackend,
    DistributedBackend,
    ExecutionBackend,
    FederatedBackend,
    ShardedStreamBackend,
    StreamBackend,
)
from repro.api.cursor import Cursor, PreparedStatement, Subscription
from repro.api.session import Session, connect
from repro.api.sources import (
    SensorSource,
    SourceAdapter,
    StreamSource,
    TableSource,
    WrapperSource,
)

__all__ = [
    "connect",
    "Session",
    "Cursor",
    "PreparedStatement",
    "Subscription",
    "ExecutionBackend",
    "StreamBackend",
    "ShardedStreamBackend",
    "BatchBackend",
    "DistributedBackend",
    "FederatedBackend",
    "SourceAdapter",
    "StreamSource",
    "TableSource",
    "WrapperSource",
    "SensorSource",
    "QueryError",
    "SourceError",
    "SessionClosedError",
]
