"""Typed-plan inference: propagate column types through every LogicalOp.

The SQL front end already type-checks the expressions it *builds*
(:class:`~repro.sql.analyzer.Analyzer` rejects ill-typed WHERE clauses
and aggregations), and :class:`~repro.plan.logical.Project` /
:class:`~repro.plan.logical.Aggregate` re-derive their output schemas at
construction. What nothing checks today are the plan-level contracts a
*hand-built* or rewritten tree can violate without the front end:
Select and Join never type their predicates, OrderBy never types its
keys, and Recursive only checks base/step *arity* against the CTE
schema, not the column types. Those gaps surface mid-stream, deep
inside a generated closure, on the first row that trips them.

:func:`check_types` closes the gaps statically: it walks the tree once,
types every expression against its child schema via ``Expr.dtype`` —
the same inference the compiled-expression layer trusts — and turns
each violation into an ``RA0xx`` diagnostic instead of a runtime
exception. :func:`typed_schemas` exposes the propagated types per node
for tooling.
"""

from __future__ import annotations

from repro.data.schema import Schema
from repro.data.types import ORDERED_TYPES, DataType, common_type
from repro.errors import AnalysisError, SchemaError, TypeMismatchError
from repro.plan.logical import (
    Aggregate,
    Join,
    LogicalOp,
    OrderBy,
    Project,
    Recursive,
    Select,
)

from repro.analysis.diagnostics import ERROR, Diagnostic, diag

#: Exceptions ``Expr.dtype`` raises for ill-typed expressions; anything
#: else is a bug and propagates.
_TYPE_FAILURES = (AnalysisError, TypeMismatchError, SchemaError)

#: Types a predicate may produce (NULL: a bare NULL literal compares
#: three-valued, never crashes).
_BOOLEAN_OK = frozenset({DataType.BOOL, DataType.NULL})


def typed_schemas(plan: LogicalOp) -> dict[int, Schema]:
    """Propagated output schema of every node, keyed by ``plan_id``."""
    return {node.plan_id: node.schema for node in plan.walk()}


def check_types(plan: LogicalOp) -> list[Diagnostic]:
    """Type every expression in ``plan``; returns ``RA0xx`` diagnostics."""
    out: list[Diagnostic] = []
    for node in plan.walk():
        _check_node(node, out)
    return out


def _check_node(node: LogicalOp, out: list[Diagnostic]) -> None:
    if isinstance(node, Select):
        _check_predicate(node.predicate, node.child.schema, node, out)
    elif isinstance(node, Join):
        if node.predicate is not None:
            _check_predicate(node.predicate, node.schema, node, out)
    elif isinstance(node, Project):
        for item in node.items:
            try:
                item.expr.dtype(node.child.schema)
            except _TYPE_FAILURES as exc:
                out.append(
                    diag(
                        "RA004",
                        ERROR,
                        f"projection {item.name!r}: {exc}",
                        operator=node.describe(),
                    )
                )
    elif isinstance(node, Aggregate):
        child_schema = node.child.schema
        for name, expr in zip(node.key_names, node.group_by):
            try:
                expr.dtype(child_schema)
            except _TYPE_FAILURES as exc:
                out.append(
                    diag(
                        "RA004",
                        ERROR,
                        f"group key {name!r}: {exc}",
                        operator=node.describe(),
                    )
                )
        for item in node.aggregates:
            try:
                item.call.dtype(child_schema)
            except _TYPE_FAILURES as exc:
                out.append(
                    diag(
                        "RA003",
                        ERROR,
                        f"aggregate {item.name!r}: {exc}",
                        operator=node.describe(),
                    )
                )
    elif isinstance(node, OrderBy):
        for item in node.items:
            try:
                dtype = item.expr.dtype(node.child.schema)
            except _TYPE_FAILURES as exc:
                out.append(
                    diag(
                        "RA001",
                        ERROR,
                        f"ORDER BY key {item.expr.render()}: {exc}",
                        operator=node.describe(),
                    )
                )
                continue
            if dtype not in ORDERED_TYPES and dtype is not DataType.NULL:
                out.append(
                    diag(
                        "RA006",
                        ERROR,
                        f"ORDER BY key {item.expr.render()} has unorderable "
                        f"type {dtype.value}",
                        operator=node.describe(),
                    )
                )
    elif isinstance(node, Recursive):
        _check_recursive(node, out)


def _check_predicate(
    predicate, schema: Schema, node: LogicalOp, out: list[Diagnostic]
) -> None:
    try:
        dtype = predicate.dtype(schema)
    except _TYPE_FAILURES as exc:
        out.append(diag("RA001", ERROR, str(exc), operator=node.describe()))
        return
    if dtype not in _BOOLEAN_OK:
        out.append(
            diag(
                "RA002",
                ERROR,
                f"predicate {predicate.render()} has type {dtype.value}, "
                "expected bool",
                operator=node.describe(),
            )
        )


def _check_recursive(node: Recursive, out: list[Diagnostic]) -> None:
    """Base and step must produce rows coercible to the CTE schema.

    The constructor checks arity only; a step whose column types drift
    from the base's would poison the working table on iteration two.
    """
    for label, branch in (("base", node.base), ("step", node.step)):
        for cte_field, branch_field in zip(node.cte_schema, branch.schema):
            try:
                common_type(cte_field.dtype, branch_field.dtype)
            except TypeMismatchError:
                out.append(
                    diag(
                        "RA005",
                        ERROR,
                        f"recursive {node.name!r} {label} column "
                        f"{branch_field.name!r} has type "
                        f"{branch_field.dtype.value}, CTE declares "
                        f"{cte_field.dtype.value}",
                        operator=node.describe(),
                    )
                )
