"""Building model: rooms, desks and the physical world state.

The building is the ground truth the sensors observe: each room has a
light state and an ambient temperature, each desk may be occupied, and
doors open or close (a lab with its door closed and lights off is
"closed" in the GUI sense). Sensor samplers read *this* model — so a
SmartCIS query's answer can be checked against the world that produced
it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import BuildingModelError
from repro.sensor.mote import Position


class RoomKind(enum.Enum):
    LAB = "lab"
    OFFICE = "office"
    HALLWAY = "hallway"
    LOBBY = "lobby"
    MACHINE_ROOM = "machine_room"


@dataclass
class Desk:
    """One desk inside a room, optionally hosting a machine.

    Attributes:
        desk_id: Identifier unique within the room ("d1").
        position: Building coordinates.
        machine_host: Host name of the machine on this desk, if any.
        occupied: Someone is seated here (drives the seat mote's light
            level: a person shadows the chair sensor).
    """

    desk_id: str
    position: Position
    machine_host: str | None = None
    occupied: bool = False


@dataclass
class Room:
    """One room with its live physical state.

    Attributes:
        room_id: Identifier ("lab1").
        kind: Room type.
        origin: Lower-left corner.
        width, height: Extent in feet.
        lights_on / door_open: Controllable state; a lab is *open* when
            both are true.
        base_temperature: Ambient setpoint; machines add heat on top.
    """

    room_id: str
    kind: RoomKind
    origin: Position
    width: float
    height: float
    lights_on: bool = True
    door_open: bool = True
    base_temperature: float = 21.0
    desks: dict[str, Desk] = field(default_factory=dict)
    entrance: Position | None = None

    def add_desk(self, desk: Desk) -> Desk:
        if desk.desk_id in self.desks:
            raise BuildingModelError(f"room {self.room_id} already has desk {desk.desk_id}")
        self.desks[desk.desk_id] = desk
        return desk

    def desk(self, desk_id: str) -> Desk:
        desk = self.desks.get(desk_id)
        if desk is None:
            raise BuildingModelError(f"room {self.room_id} has no desk {desk_id!r}")
        return desk

    @property
    def center(self) -> Position:
        return Position(self.origin.x + self.width / 2, self.origin.y + self.height / 2)

    @property
    def is_open(self) -> bool:
        """The paper's lab-open condition: door open and lights on."""
        return self.lights_on and self.door_open

    @property
    def status(self) -> str:
        return "open" if self.is_open else "closed"

    def contains(self, position: Position) -> bool:
        return (
            self.origin.x <= position.x <= self.origin.x + self.width
            and self.origin.y <= position.y <= self.origin.y + self.height
        )

    def ambient_light(self) -> float:
        """Room light level in raw sensor units (0-1000)."""
        return 700.0 if self.lights_on else 40.0

    def seat_light(self, desk_id: str) -> float:
        """Light at a desk's chair sensor: a seated person shadows it.

        Paper §2: "the light-level sensor on a similar 'mote' is used to
        detect if someone is seated in the chair" — occupied chairs read
        dark even with room lights on.
        """
        desk = self.desk(desk_id)
        if desk.occupied:
            return 25.0
        return self.ambient_light()


class Building:
    """The whole building: rooms plus global state."""

    def __init__(self, name: str = "Moore"):
        self.name = name
        self.rooms: dict[str, Room] = {}

    def add_room(self, room: Room) -> Room:
        if room.room_id in self.rooms:
            raise BuildingModelError(f"duplicate room {room.room_id}")
        self.rooms[room.room_id] = room
        return room

    def room(self, room_id: str) -> Room:
        room = self.rooms.get(room_id)
        if room is None:
            raise BuildingModelError(
                f"unknown room {room_id!r}; have {sorted(self.rooms)}"
            )
        return room

    def labs(self) -> list[Room]:
        return [r for r in self.rooms.values() if r.kind is RoomKind.LAB]

    def room_at(self, position: Position) -> Room | None:
        """The room containing a position (None in hallways between rooms)."""
        for room in self.rooms.values():
            if room.contains(position):
                return room
        return None

    def all_desks(self) -> list[tuple[Room, Desk]]:
        return [
            (room, desk)
            for room in self.rooms.values()
            for desk in room.desks.values()
        ]

    def desk_of_machine(self, host: str) -> tuple[Room, Desk] | None:
        for room, desk in self.all_desks():
            if desk.machine_host == host:
                return room, desk
        return None
