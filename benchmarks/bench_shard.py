"""Microbenchmark — the sharded StreamEngine pool behind the Session API.

Measures the rows/sec a realistic *standing-query* deployment sustains —
seven concurrent continuous queries over one feed (two fused
filter→project chains, two keyed windowed aggregations, three keyed
DISTINCTs) — across three ingest strategies, all through the unchanged
``Session`` surface:

* **single_push** — one StreamEngine, per-element ``session.push``: the
  default wrapper-style ingest a single engine serves (the pre-batching
  baseline this repo's perf trajectory is measured against);
* **single_push_many** — one StreamEngine fed through the vectorized
  ``session.push_many`` hot path (fused chains in generated batch
  loops, stateful operators taking a whole batch per dispatch, window
  scans folded by ``compile_accumulate``);
* **sharded_push_many** — ``connect(shards=N)`` for N ∈ {2, 4}: the
  same batched hot path through the :class:`ShardedStreamEngine` pool,
  rows hash-partitioned by the source's declared key and every
  partition-safe query running one replica per shard with merged
  results.
* **process_push_many** — ``connect(shards=N, workers="process")`` for
  N ∈ {2, 4}: one worker OS process per shard fed value-tuple batches
  over bounded queues, queries shipped as SQL text and recompiled in
  the workers (:mod:`repro.stream.procshard`). The artifact records
  the worker-count trajectory (``process_scaling``) and the host's
  ``cpu_count``, because what this buys depends entirely on cores.

Two further workload groups measure the *exchange* path — partition-
unsafe plans that used to surrender to the pool's single fallback
engine and now repartition mid-plan to run on every shard:

* **shuffled_join** — a host=host equi-join over two streams
  partitioned by room and kind; both inputs hash-shuffle on host
  (every row crosses the exchange) and the join runs one replica per
  shard over its key subset;
* **global_agg_2phase** — a non-covering GROUP BY and a global
  aggregate, split into per-shard partials merged across the shuffle.

Each group runs on one engine (the old fallback path), the 4-shard
in-process pool and the 4-shard process pool, with sorted results
asserted identical across all three.

Honest-comparison note: on a single-core host neither pool buys
OS-level parallelism — the point proven is that partition routing,
replica fan-out and the merge protocol preserve the batched hot path
(``sharding_overhead`` below bounds the loss vs one batched engine),
and that the process transport's cost stays bounded
(``process_vs_inprocess_4``: ≥4 cores must show ≥1.5× over the
in-process pool; fewer cores must keep pickling/queue overhead ≤25%,
never asserted as a speedup). The headline number —
``speedup_vs_single_push`` — is the end-to-end win of this repo's
ingest path (sharded + batched + compiled fold) over the per-element
single-engine ingest that the seed system served.

Result equality is asserted across every strategy (sorted rows per
query), so this doubles as a sharded-vs-unsharded agreement check.
Results go to ``BENCH_shard.json`` (directory override:
``REPRO_BENCH_DIR``); ``REPRO_BENCH_SCALE`` shrinks the workload for
smoke runs, where the timing thresholds are skipped.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from repro.api import StreamSource, connect
from repro.data import DataType, Row, Schema

ARTIFACT_NAME = "BENCH_shard.json"

#: Ingest batch size for push_many — the shape a wrapper poll delivers.
BATCH_SIZE = 4096

READINGS = Schema.of(
    ("room", DataType.STRING),
    ("host", DataType.STRING),
    ("temp", DataType.FLOAT),
    ("load", DataType.FLOAT),
)

#: The standing queries: fused stateless chains, keyed windowed
#: aggregation (partition-safe: GROUP BY covers the partition key) and
#: keyed DISTINCTs. All seven are partition-safe, so every one runs one
#: replica per shard on the pool.
QUERIES = [
    """SELECT r.host, r.temp * 1.8 + 32.0 AS fahrenheit, r.load * 100.0 AS pct,
              COALESCE(r.load, 0.0) + r.temp / 10.0 AS score
       FROM Readings r
       WHERE r.temp > 15.0 AND r.temp < 90.0 AND r.room LIKE 'lab%'
             AND r.load >= 0.0 AND r.load <= 1.0""",
    """SELECT r.host, (r.temp - 20.0) * (r.temp - 20.0) AS dev
       FROM Readings r
       WHERE r.load > 0.25 AND r.temp < 70.0""",
    """SELECT r.host, COUNT(*) AS n, SUM(r.temp) AS total, MAX(r.load) AS peak
       FROM Readings r [RANGE 40 SECONDS SLIDE 40 SECONDS]
       WHERE r.temp > 5.0 AND r.load >= 0.0
       GROUP BY r.host""",
    """SELECT r.host, MIN(r.temp) AS lo, AVG(r.load) AS mean
       FROM Readings r [RANGE 40 SECONDS SLIDE 40 SECONDS]
       WHERE r.temp < 85.0
       GROUP BY r.host""",
    """SELECT DISTINCT r.host, r.room FROM Readings r WHERE r.load >= 0.5""",
    """SELECT DISTINCT r.room, r.host FROM Readings r WHERE r.temp > 40.0""",
    """SELECT DISTINCT r.host FROM Readings r WHERE r.temp > 25.0 AND r.load > 0.1""",
]


EVENTS = Schema.of(
    ("kind", DataType.STRING),
    ("host", DataType.STRING),
    ("load", DataType.FLOAT),
)

#: Partition-unsafe standing queries the pool used to surrender to its
#: single fallback engine; exchanges now run them on every shard.
#: ``global_agg_2phase``: the partition key is host, but one query
#: groups by room and the other has no GROUP BY at all — both split
#: into per-shard partials merged across an exchange (RA321).
XCHG_AGG_QUERIES = [
    """SELECT r.room, COUNT(*) AS n, SUM(r.temp) AS total, MAX(r.load) AS peak
       FROM Readings r [RANGE 40 SECONDS SLIDE 40 SECONDS]
       WHERE r.temp > 5.0
       GROUP BY r.room""",
    """SELECT COUNT(*) AS n, AVG(r.load) AS mean, MIN(r.temp) AS lo
       FROM Readings r [RANGE 40 SECONDS SLIDE 40 SECONDS]""",
]

#: ``shuffled_join``: Readings is partitioned by room and Events by
#: kind, so the host=host equi-join aligns with neither key — both
#: inputs hash-shuffle on host so matching rows meet on one shard
#: (RA320).
XCHG_JOIN_QUERIES = [
    """SELECT r.host, r.temp, e.load AS eload
       FROM Readings r [RANGE 10 SECONDS], Events e [RANGE 10 SECONDS]
       WHERE r.host = e.host AND e.load > 0.1 AND r.temp > 10.0""",
]


def _reading_rows(count: int) -> tuple[list[Row], list[float]]:
    rooms = ["lab1", "lab2", "office3", "lab4"]
    rows = [
        Row.raw(
            READINGS,
            (rooms[i % 4], f"ws{i % 64}", 10.0 + (i % 90), (i % 100) / 100.0),
        )
        for i in range(count)
    ]
    return rows, [i / 100.0 for i in range(count)]


def _event_rows(count: int) -> tuple[list[Row], list[float]]:
    kinds = ["warn", "err", "info"]
    rows = [
        Row.raw(
            EVENTS,
            (kinds[i % 3], f"ws{i % 64}", (i % 100) / 100.0),
        )
        for i in range(count)
    ]
    return rows, [i / 50.0 for i in range(count)]


def _session(shards: int, workers: str = "inline"):
    session = (
        connect(shards=shards, workers=workers) if shards > 1 else connect()
    )
    session.attach(
        StreamSource("Readings", READINGS, rate=10.0, partition_by="host")
    )
    cursors = [session.query(sql) for sql in QUERIES]
    return session, cursors


def _run(shards: int, batched: bool, rows, stamps, workers: str = "inline"):
    """One measured ingest of the whole feed; returns (seconds, results)."""
    n = len(rows)
    session, cursors = _session(shards, workers)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        if batched:
            for offset in range(0, n, BATCH_SIZE):
                end = min(offset + BATCH_SIZE, n)
                session.push_many("Readings", rows[offset:end], stamps[offset:end])
                session.punctuate(stamps[end - 1])
        else:
            boundaries = set(range(BATCH_SIZE - 1, n, BATCH_SIZE)) | {n - 1}
            for index, (row, stamp) in enumerate(zip(rows, stamps)):
                session.push("Readings", row, stamp)
                if index in boundaries:
                    session.punctuate(stamp)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    session.punctuate(stamps[-1] + 80.0)  # flush the trailing windows
    results = tuple(
        tuple(sorted(repr(row.values) for row in cursor.results()))
        for cursor in cursors
    )
    session.close()
    return elapsed, results


def _run_exchanged_agg(shards: int, workers: str, rows, stamps):
    """One measured ingest of the two-phase-aggregation workload."""
    session = (
        connect(shards=shards, workers=workers) if shards > 1 else connect()
    )
    session.attach(
        StreamSource("Readings", READINGS, rate=10.0, partition_by="host")
    )
    cursors = [session.query(sql) for sql in XCHG_AGG_QUERIES]
    n = len(rows)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for offset in range(0, n, BATCH_SIZE):
            end = min(offset + BATCH_SIZE, n)
            session.push_many("Readings", rows[offset:end], stamps[offset:end])
            session.punctuate(stamps[end - 1])
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    session.punctuate(stamps[-1] + 80.0)
    results = tuple(
        tuple(sorted(repr(row.values) for row in cursor.results()))
        for cursor in cursors
    )
    session.close()
    return elapsed, results


def _run_exchanged_join(shards: int, workers: str, feeds):
    """One measured ingest of the shuffled-join workload: two streams,
    partitioned by room and kind, joined on host — the exchange's
    worst case, every input row crosses the shuffle."""
    r_rows, r_stamps, e_rows, e_stamps = feeds
    session = (
        connect(shards=shards, workers=workers) if shards > 1 else connect()
    )
    session.attach(
        StreamSource("Readings", READINGS, rate=10.0, partition_by="room")
    )
    session.attach(
        StreamSource("Events", EVENTS, rate=10.0, partition_by="kind")
    )
    cursors = [session.query(sql) for sql in XCHG_JOIN_QUERIES]
    batch = BATCH_SIZE // 4  # interleave the feeds in lockstep
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for offset in range(0, len(r_rows), batch):
            end = min(offset + batch, len(r_rows))
            session.push_many(
                "Readings", r_rows[offset:end], r_stamps[offset:end]
            )
            e_end = min(end, len(e_rows))
            if offset < e_end:
                session.push_many(
                    "Events", e_rows[offset:e_end], e_stamps[offset:e_end]
                )
            session.punctuate(
                min(r_stamps[end - 1], e_stamps[min(e_end, len(e_stamps)) - 1])
            )
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    session.punctuate(r_stamps[-1] + 80.0)
    results = tuple(
        tuple(sorted(repr(row.values) for row in cursor.results()))
        for cursor in cursors
    )
    session.close()
    return elapsed, results


#: Measurement rounds per workload. Workloads are interleaved across
#: rounds (round 1 runs every workload once, then round 2, ...) so the
#: timings every ratio compares were taken adjacent in time — host-speed
#: drift over the minutes a full run takes would otherwise dominate the
#: cross-strategy ratios (same rationale as bench_session's
#: ``_best_of_interleaved``). The workloads table reports each
#: workload's best-of floor; the acceptance ratios are medians of the
#: per-round ratios (see ``ratio`` below). Five rounds: the container's
#: wall clock jitters by double-digit percentages, so both statistics
#: need a few samples before they converge.
REPETITIONS = 7


def run_benchmarks(scale: float | None = None) -> dict:
    if scale is None:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    n = max(400, int(40_000 * scale))
    rows, stamps = _reading_rows(n)
    n_agg = max(400, int(20_000 * scale))
    n_join = max(400, int(10_000 * scale))
    # Built lazily between the two round loops: the legacy group's
    # process workloads fork from the parent inside the timed region,
    # so its rounds must run against the same resident heap their bars
    # were calibrated on — not one fattened by the exchanged feeds.
    xdata: dict[str, tuple] = {}

    def _xdata(key: str) -> tuple:
        if not xdata:
            xdata["agg"] = _reading_rows(n_agg)
            xdata["join"] = (
                _reading_rows(n_join)
                + _event_rows(max(300, int(n_join * 0.7))),
            )
        return xdata[key]

    workloads = {
        "single_push": lambda: _run(1, False, rows, stamps),
        "single_push_many": lambda: _run(1, True, rows, stamps),
        "sharded_2_push_many": lambda: _run(2, True, rows, stamps),
        "sharded_4_push_many": lambda: _run(4, True, rows, stamps),
        "process_2_push_many": lambda: _run(2, True, rows, stamps, "process"),
        "process_4_push_many": lambda: _run(4, True, rows, stamps, "process"),
    }
    # Exchanged workloads: partition-unsafe plans running on the whole
    # pool via mid-plan repartitioning. The *_single baselines stand in
    # for the old fallback-engine path (one batched engine fed the
    # entire feed). Measured as a second interleaved-round loop so the
    # legacy group's adjacent-pair ratios keep the round cadence their
    # bars were calibrated against.
    xworkloads = {
        "global_agg_2phase_single": lambda: _run_exchanged_agg(
            1, "inline", *_xdata("agg")
        ),
        "global_agg_2phase_sharded_4": lambda: _run_exchanged_agg(
            4, "inline", *_xdata("agg")
        ),
        "global_agg_2phase_process_4": lambda: _run_exchanged_agg(
            4, "process", *_xdata("agg")
        ),
        "shuffled_join_single": lambda: _run_exchanged_join(
            1, "inline", *_xdata("join")
        ),
        "shuffled_join_sharded_4": lambda: _run_exchanged_join(
            4, "inline", *_xdata("join")
        ),
        "shuffled_join_process_4": lambda: _run_exchanged_join(
            4, "process", *_xdata("join")
        ),
    }
    #: Workloads whose sorted result rows must agree (the first entry of
    #: each group is the reference).
    equality_groups = [
        ("single_push", "single_push_many", "sharded_2_push_many",
         "sharded_4_push_many", "process_2_push_many", "process_4_push_many"),
        ("global_agg_2phase_single", "global_agg_2phase_sharded_4",
         "global_agg_2phase_process_4"),
        ("shuffled_join_single", "shuffled_join_sharded_4",
         "shuffled_join_process_4"),
    ]
    samples: dict[str, list[float]] = {
        name: [] for name in {**workloads, **xworkloads}
    }
    payloads: dict[str, tuple] = {}
    for loop in (workloads, xworkloads):
        for _ in range(REPETITIONS):
            for name, thunk in loop.items():
                elapsed, results = thunk()
                samples[name].append(elapsed)
                payloads[name] = results
    for group in equality_groups:
        baseline = payloads[group[0]]
        for name in group[1:]:
            assert payloads[name] == baseline, (
                f"{name} results differ from {group[0]}"
            )
    seconds = {name: min(times) for name, times in samples.items()}

    def ratio(numerator: str, denominator: str) -> float | None:
        """Median of the per-round ratios between two workloads.

        The two samples of each round ran adjacent in time, so their
        ratio cancels host-speed drift; dividing the best-of floors
        instead could compare timings taken minutes apart on what is
        effectively a different-speed machine. The median then discards
        the odd round where the scheduler stalled one side.
        """
        pairs = zip(samples[numerator], samples[denominator])
        rounds = [num / den for num, den in pairs if den]
        return round(statistics.median(rounds), 2) if rounds else None
    return {
        "benchmark": "shard",
        "scale": scale,
        "rows": n,
        "queries": len(QUERIES),
        "batch_size": BATCH_SIZE,
        "cpu_count": os.cpu_count(),
        "workloads": {
            name: {
                "seconds": round(elapsed, 6),
                "rows_per_s": round(n / elapsed) if elapsed else None,
            }
            for name, elapsed in seconds.items()
        },
        # The acceptance ratio: the pool's batched hot path vs the
        # per-element single-engine ingest the seed system served.
        "speedup_vs_single_push": ratio("single_push", "sharded_4_push_many"),
        # Partition routing + replica fan-out + merge must not lose the
        # batched hot path (1.0 = free; this is the single-core bound).
        "sharding_overhead": ratio("single_push_many", "sharded_4_push_many"),
        # Worker-count trajectory of the process pool: rows/s at 1
        # (batched single engine), 2 and 4 worker processes. On a
        # multi-core host this curve should rise; on one core it shows
        # the transport's flat cost.
        "process_scaling": {
            str(workers): round(n / seconds[name]) if seconds[name] else None
            for workers, name in (
                (1, "single_push_many"),
                (2, "process_2_push_many"),
                (4, "process_4_push_many"),
            )
        },
        # Process transport vs the in-process pool at the same shard
        # count: >= 1.5 is the multi-core speedup claim, >= 0.8 is the
        # single-core overhead bound (pickling + queues <= 25%).
        "process_vs_inprocess_4": ratio(
            "sharded_4_push_many", "process_4_push_many"
        ),
        # Exchanged workloads: 4-shard batched ingest vs the
        # fallback-engine path (one batched engine fed everything, which
        # is what partition-unsafe plans ran on before exchanges).
        # shuffled_join_speedup_4 is the acceptance bar (>= 1.3 with
        # >= 4 cores); shuffled_join_transport_4 bounds the shuffle
        # transport on the in-process pool, where no OS parallelism can
        # hide it (>= 0.8 = <= 25% overhead, the PR 9 convention — per-
        # shard join windows shrink, so this usually exceeds 1.0). The
        # two-phase-aggregation ratios are recorded unasserted: the
        # single-engine baseline is a compiled accumulate fold north of
        # 1M rows/s, so on one core the exchange's partial/merge
        # machinery reads as pure overhead — the workload documents the
        # price paid to buy cores, not a single-core win.
        "shuffled_join_speedup_4": ratio(
            "shuffled_join_single", "shuffled_join_process_4"
        ),
        "shuffled_join_transport_4": ratio(
            "shuffled_join_single", "shuffled_join_sharded_4"
        ),
        "global_agg_2phase_speedup_4": ratio(
            "global_agg_2phase_single", "global_agg_2phase_process_4"
        ),
        "global_agg_2phase_transport_4": ratio(
            "global_agg_2phase_single", "global_agg_2phase_sharded_4"
        ),
    }


def write_artifact(results: dict, directory: str | os.PathLike | None = None) -> Path:
    if directory is None:
        directory = os.environ.get(
            "REPRO_BENCH_DIR", Path(__file__).resolve().parent.parent
        )
    path = Path(directory) / ARTIFACT_NAME
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def test_shard_speedup(table_printer):
    results = run_benchmarks()
    path = write_artifact(results)
    workloads = results["workloads"]
    baseline = workloads["single_push"]["rows_per_s"]
    table_printer(
        f"sharded engine pool, {results['queries']} standing queries (artifact: {path})",
        ["workload", "rows", "rows/s", "vs single push"],
        [
            [
                name,
                results["rows"],
                stats["rows_per_s"],
                f'{stats["rows_per_s"] / baseline:.2f}x' if baseline else "-",
            ]
            for name, stats in workloads.items()
        ],
    )
    # Acceptance thresholds of the sharding change, full scale only —
    # smoke workloads are timing noise.
    if results["scale"] >= 1.0:
        assert results["speedup_vs_single_push"] >= 1.8
        assert results["sharding_overhead"] >= 0.7
        # Process pool: genuine speedup where cores exist, bounded
        # transport overhead where they don't (never claimed as a win).
        if (results["cpu_count"] or 1) >= 4:
            assert results["process_vs_inprocess_4"] >= 1.5
            # Exchanged joins on the whole pool must beat the fallback
            # engine they used to run on.
            assert results["shuffled_join_speedup_4"] >= 1.3
        else:
            assert results["process_vs_inprocess_4"] >= 0.8
            # No cores to parallelize over: the shuffle transport must
            # at least stay bounded (<= 25% overhead; per-shard join
            # windows shrink, so this is usually a mild win).
            assert results["shuffled_join_transport_4"] >= 0.8


if __name__ == "__main__":
    from benchmarks.conftest import print_table

    test_shard_speedup(print_table)
