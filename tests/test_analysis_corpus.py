"""Admission-time analysis through the Session surface.

Acceptance for the analysis pass as wired into ``connect``:

* **Identity corpus** — every type-checker-passing statement compiles
  and emits identical rows and punctuation positions under the
  interpreted, compiled-expression and fused execution modes (the
  analysis is advisory for sound plans: it must never change what
  runs).
* **Rejection corpus** — statements the analysis rejects raise
  :class:`~repro.errors.QueryError` from ``query()`` under
  ``analysis="strict"`` *before the engine sees a row*: no cursor, no
  shared chain, no operator state.
* **Modes and counters** — ``warn`` issues a
  :class:`~repro.analysis.PlanAnalysisWarning` once per fresh compile,
  cache hits reuse the stored verdict (``stats()["analysis"]``), and
  ``off`` skips the pass entirely.
* **Explain** — ``session.explain`` surfaces partition-safety,
  sharing-eligibility and federated partitioning reasons as coded
  diagnostics, and rejects non-SELECTs with a source position.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.analysis import PlanAnalysisWarning, analyze_plan
from repro.api import StreamSource, connect
from repro.catalog import Catalog
from repro.data import DataType, Row, Schema
from repro.data.streams import CollectingConsumer, Punctuation, StreamElement
from repro.errors import QueryError
from repro.plan import PlanBuilder
from repro.stream.compiler import PlanCompiler

READINGS = Schema.of(
    ("room", DataType.STRING),
    ("host", DataType.STRING),
    ("temp", DataType.FLOAT),
)

#: Statements the type checker passes: the analysis must be invisible
#: to execution (identical output under every mode).
GOOD_CORPUS = [
    "select r.room, r.temp from Readings r where r.temp > 20.0",
    "select r.host, r.temp * 2.0 as t2 from Readings r where r.temp > 5.0",
    "select r.room, count(*) as n from Readings r "
    "[range 10 seconds slide 10 seconds] group by r.room",
    "select r.host, min(r.temp) as lo, max(r.temp) as hi from Readings r "
    "[range 15 seconds] group by r.host",
    "select distinct r.room from Readings r where r.temp > 10.0",
]

#: Statements the analysis rejects with an error-severity diagnostic.
BAD_CORPUS = [
    ("select r.room from Readings r [unbounded] group by r.room", "RA104"),
    (
        "select avg(r.temp) as a from Readings r [unbounded] group by r.room",
        "RA104",
    ),
]


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream("Readings", READINGS, rate=10.0)
    return catalog


def _elements(count: int, rng: random.Random) -> list:
    items: list = []
    for i in range(count):
        row = Row(
            READINGS,
            (
                f"lab{i % 3}",
                f"ws{i % 5}",
                None if i % 13 == 0 else round(rng.uniform(-5.0, 60.0), 2),
            ),
            validate=False,
        )
        items.append(StreamElement(row, round(rng.uniform(0.0, 40.0), 3)))
    for _ in range(4):
        items.insert(rng.randrange(len(items)), Punctuation(rng.uniform(0.0, 50.0)))
    items.append(Punctuation(100.0))
    return items


def _run(plan, items, **compiler_kwargs):
    sink = CollectingConsumer()
    compiled = PlanCompiler(**compiler_kwargs).compile(plan, sink)
    port = compiled.ports[0].consumer
    for item in items:
        port.push(item)
    return sink


class TestIdentityCorpus:
    @pytest.mark.parametrize("sql", GOOD_CORPUS)
    @pytest.mark.parametrize("seed", range(3))
    def test_passing_plans_run_identically_under_every_mode(self, sql, seed):
        plan = PlanBuilder(_catalog()).build_sql(sql)
        assert analyze_plan(plan).ok
        items = _elements(80, random.Random(seed))
        interpreted = _run(plan, items, compiled_exprs=False, fuse=False)
        compiled = _run(plan, items, compiled_exprs=True, fuse=False)
        fused = _run(plan, items, compiled_exprs=True, fuse=True)
        assert compiled.elements == interpreted.elements
        assert compiled.punctuations == interpreted.punctuations
        assert fused.elements == interpreted.elements
        assert fused.punctuations == interpreted.punctuations


class TestStrictRejection:
    def _session(self, **kwargs):
        session = connect(**kwargs)
        session.attach(StreamSource("Readings", READINGS, rate=10.0))
        return session

    @pytest.mark.parametrize("sql,code", BAD_CORPUS)
    def test_rejected_before_the_engine_sees_a_row(self, sql, code):
        session = self._session(analysis="strict")
        before = session.stats()["sharing"]
        with pytest.raises(QueryError, match=code):
            session.query(sql)
        after = session.stats()["sharing"]
        # No chain was created, nothing attached: the engine never saw
        # the plan, let alone a row.
        assert after["created"] == before["created"]
        assert after["attached"] == before["attached"]
        assert session.stats()["analysis"]["runs"] == 1
        session.close()

    def test_rejection_is_cached(self):
        session = self._session(analysis="strict")
        sql = BAD_CORPUS[0][0]
        for _ in range(3):
            with pytest.raises(QueryError):
                session.query(sql)
        stats = session.stats()
        assert stats["analysis"] == {
            "runs": 1,
            "hits": 2,
            "skipped": 0,
            "mode": "strict",
        }
        assert stats["plan_cache"]["hits"] == 2
        session.close()

    def test_good_statements_run_under_strict(self):
        session = self._session(analysis="strict")
        cursor = session.query(GOOD_CORPUS[0])
        session.push("Readings", {"room": "lab1", "host": "ws1", "temp": 30.0})
        session.punctuate(1.0)
        assert [e.row["r.temp"] for e in cursor._handle.sink.elements] == [30.0]
        session.close()


class TestWarnAndOffModes:
    def _session(self, **kwargs):
        session = connect(**kwargs)
        session.attach(StreamSource("Readings", READINGS, rate=10.0))
        return session

    def test_warn_mode_warns_once_per_fresh_compile(self):
        session = self._session()  # warn is the default
        sql = BAD_CORPUS[0][0]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.query(sql).close()
            session.query(sql).close()
        ours = [w for w in caught if issubclass(w.category, PlanAnalysisWarning)]
        assert len(ours) == 2  # enforcement repeats; analysis ran once
        assert "RA104" in str(ours[0].message)
        assert session.stats()["analysis"] == {
            "runs": 1,
            "hits": 1,
            "skipped": 0,
            "mode": "warn",
        }
        session.close()

    def test_warn_mode_is_silent_for_sound_plans(self):
        session = self._session()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for sql in GOOD_CORPUS:
                session.query(sql).close()
        assert not [
            w for w in caught if issubclass(w.category, PlanAnalysisWarning)
        ]
        session.close()

    def test_off_mode_skips_analysis(self):
        session = self._session(analysis="off")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.query(BAD_CORPUS[0][0]).close()
        assert not [
            w for w in caught if issubclass(w.category, PlanAnalysisWarning)
        ]
        assert session.stats()["analysis"] == {
            "runs": 0,
            "hits": 0,
            "skipped": 1,
            "mode": "off",
        }
        session.close()

    def test_unknown_mode_rejected_at_connect(self):
        with pytest.raises(QueryError, match="analysis mode"):
            connect(analysis="pedantic")


class TestExplainDiagnostics:
    def _session(self, **kwargs):
        session = connect(**kwargs)
        session.attach(
            StreamSource("Readings", READINGS, rate=10.0, partition_by="room")
        )
        return session

    def _codes(self, federated):
        return [d.code for d in federated.diagnostics]

    def test_unsharded_explain_reports_sharing_and_federated(self):
        session = self._session()
        federated = session.explain(
            "select r.room, r.temp from Readings r where r.temp > 20.0"
        )
        codes = self._codes(federated)
        assert "RA400" in codes  # shareable
        assert "RA500" in codes  # no sensor fragments
        assert "RA503" in codes  # stream residual
        assert not any(code.startswith("RA3") for code in codes)
        assert "diagnostics:" in federated.explain()
        session.close()

    def test_sharded_explain_reports_partition_verdict(self):
        session = self._session(shards=2)
        aligned = session.explain(
            "select r.room, count(*) as n from Readings r "
            "[range 10 seconds] group by r.room"
        )
        assert "RA300" in self._codes(aligned)
        fallback = session.explain(
            "select r.room from Readings r order by r.room"
        )
        codes = self._codes(fallback)
        assert "RA301" in codes
        rendered = [d.render() for d in fallback.diagnostics]
        assert any("designated engine" in line for line in rendered)
        session.close()

    def test_explain_includes_analysis_findings(self):
        session = self._session()
        federated = session.explain(
            "select r.room from Readings r [unbounded] group by r.room"
        )
        assert "RA104" in self._codes(federated)
        session.close()

    def test_non_select_rejected_with_position(self):
        session = self._session()
        with pytest.raises(QueryError, match="SELECT") as excinfo:
            session.explain("create view V as select r.room from Readings r")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 1
        session.close()
