"""Primitive data types for the ASPEN data model.

ASPEN integrates values originating from motes (16-bit ADC readings),
machine monitors (counters, gauges), web wrappers (strings, timestamps)
and relational tables. A small closed set of logical types keeps the
type system decidable for the federated optimizer while remaining rich
enough for every SmartCIS source.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Logical column types understood by every ASPEN engine.

    The sensor engine only supports ``INT``, ``FLOAT``, ``BOOL`` and
    ``STRING`` (motes have no timestamp registers; times are assigned at
    the basestation), which the federated optimizer checks when deciding
    whether a fragment can be pushed into the network.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    TIMESTAMP = "timestamp"
    NULL = "null"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


#: Types representable on a mote (no TIMESTAMP: assigned at the basestation).
SENSOR_SUPPORTED_TYPES = frozenset(
    {DataType.INT, DataType.FLOAT, DataType.BOOL, DataType.STRING}
)

#: Types on which ordering comparisons (<, <=, >, >=) are defined.
ORDERED_TYPES = frozenset(
    {DataType.INT, DataType.FLOAT, DataType.TIMESTAMP, DataType.STRING}
)

#: Types on which arithmetic (+, -, *, /) is defined.
NUMERIC_TYPES = frozenset({DataType.INT, DataType.FLOAT})


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    ``bool`` is checked before ``int`` because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if value is None:
        return DataType.NULL
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    raise TypeMismatchError(f"cannot infer ASPEN type for {value!r} ({type(value).__name__})")


def conforms(value: Any, dtype: DataType) -> bool:
    """Return True if ``value`` is a legal instance of ``dtype``.

    ``None`` conforms to every type (SQL NULL semantics). An ``int`` is a
    legal ``FLOAT`` (implicit widening) but a ``float`` is not a legal
    ``INT``.
    """
    if value is None:
        return True
    if dtype is DataType.INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if dtype is DataType.FLOAT:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if dtype is DataType.STRING:
        return isinstance(value, str)
    if dtype is DataType.BOOL:
        return isinstance(value, bool)
    if dtype is DataType.TIMESTAMP:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if dtype is DataType.NULL:
        return value is None
    raise TypeMismatchError(f"unknown data type {dtype!r}")


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to ``dtype``, raising :class:`TypeMismatchError` on failure.

    Coercion is intentionally conservative: strings are parsed for
    numeric types (wrappers scrape text), numerics widen to float, and
    anything converts to string. Lossy float→int coercion is only
    permitted when the float is integral.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float):
                if math.isfinite(value) and value.is_integer():
                    return int(value)
                raise TypeMismatchError(f"cannot losslessly coerce {value!r} to INT")
            if isinstance(value, str):
                return int(value.strip())
        elif dtype is DataType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif dtype is DataType.STRING:
            if isinstance(value, str):
                return value
            if isinstance(value, bool):
                return "true" if value else "false"
            return str(value)
        elif dtype is DataType.BOOL:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes", "on"):
                    return True
                if lowered in ("false", "f", "0", "no", "off"):
                    return False
            if isinstance(value, (int, float)) and value in (0, 1):
                return bool(value)
        elif dtype is DataType.TIMESTAMP:
            if isinstance(value, bool):
                raise TypeMismatchError("cannot coerce BOOL to TIMESTAMP")
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif dtype is DataType.NULL:
            raise TypeMismatchError(f"cannot coerce non-null {value!r} to NULL")
    except (ValueError, OverflowError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype.value}: {exc}") from exc
    raise TypeMismatchError(f"cannot coerce {value!r} ({type(value).__name__}) to {dtype.value}")


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the least common supertype of two types, for expression typing.

    NULL is absorbed by any type; INT widens to FLOAT; otherwise the
    types must match exactly.
    """
    if left is right:
        return left
    if left is DataType.NULL:
        return right
    if right is DataType.NULL:
        return left
    if {left, right} <= NUMERIC_TYPES:
        return DataType.FLOAT
    if {left, right} == {DataType.FLOAT, DataType.TIMESTAMP}:
        return DataType.TIMESTAMP
    if {left, right} == {DataType.INT, DataType.TIMESTAMP}:
        return DataType.TIMESTAMP
    raise TypeMismatchError(f"no common type for {left.value} and {right.value}")


def size_in_bytes(dtype: DataType) -> int:
    """Wire size of one value of ``dtype`` in the mote message format.

    Used by the sensor-engine cost model: message cost is proportional to
    payload bytes. Strings are costed at a catalog-configurable average;
    this returns the default of 16 bytes.
    """
    return {
        DataType.INT: 4,
        DataType.FLOAT: 4,  # motes use single precision
        DataType.BOOL: 1,
        DataType.STRING: 16,
        DataType.TIMESTAMP: 8,
        DataType.NULL: 1,
    }[dtype]
