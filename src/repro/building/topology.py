"""Routing points: the building's navigation graph.

Paper §2: "a table of 'routing points' describing possible path segments
and distances in the building in order to suggest routes to resources."

The graph is undirected and weighted by walking distance. It exports
itself as the ``RoutingPoints`` table rows the stream engine loads, and
it is the edge relation behind the recursive transitive-closure view the
stream engine maintains for live routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BuildingModelError
from repro.sensor.mote import Position


@dataclass(frozen=True)
class RoutingPoint:
    """A named navigation node (hallway junction, doorway, desk)."""

    name: str
    position: Position


class RoutingGraph:
    """Undirected weighted graph over routing points."""

    def __init__(self) -> None:
        self._points: dict[str, RoutingPoint] = {}
        self._edges: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    def add_point(self, name: str, position: Position) -> RoutingPoint:
        if name in self._points:
            raise BuildingModelError(f"duplicate routing point {name!r}")
        point = RoutingPoint(name, position)
        self._points[name] = point
        self._edges[name] = {}
        return point

    def add_edge(self, a: str, b: str, distance: float | None = None) -> None:
        """Connect two points; distance defaults to Euclidean."""
        if a not in self._points or b not in self._points:
            missing = a if a not in self._points else b
            raise BuildingModelError(f"unknown routing point {missing!r}")
        if a == b:
            raise BuildingModelError("self-loop routing edges are not allowed")
        if distance is None:
            distance = self._points[a].position.distance_to(self._points[b].position)
        if distance <= 0:
            raise BuildingModelError("routing edge distance must be positive")
        self._edges[a][b] = distance
        self._edges[b][a] = distance

    def remove_edge(self, a: str, b: str) -> None:
        """Remove a segment (a closed corridor / locked door)."""
        self._edges.get(a, {}).pop(b, None)
        self._edges.get(b, {}).pop(a, None)

    # ------------------------------------------------------------------
    def point(self, name: str) -> RoutingPoint:
        point = self._points.get(name)
        if point is None:
            raise BuildingModelError(f"unknown routing point {name!r}")
        return point

    def has_point(self, name: str) -> bool:
        return name in self._points

    @property
    def points(self) -> list[RoutingPoint]:
        return list(self._points.values())

    def neighbors(self, name: str) -> dict[str, float]:
        """Adjacent points and edge distances."""
        if name not in self._edges:
            raise BuildingModelError(f"unknown routing point {name!r}")
        return dict(self._edges[name])

    def edges(self) -> list[tuple[str, str, float]]:
        """Each undirected edge once, alphabetically oriented."""
        out = []
        for a, adjacency in self._edges.items():
            for b, distance in adjacency.items():
                if a < b:
                    out.append((a, b, distance))
        return sorted(out)

    def edge_rows(self) -> list[dict[str, object]]:
        """``RoutingPoints`` table rows — both directions, as the paper's
        table of path segments."""
        rows = []
        for a, b, distance in self.edges():
            rows.append({"src": a, "dst": b, "distance": distance})
            rows.append({"src": b, "dst": a, "distance": distance})
        return rows

    def nearest_point(self, position: Position) -> RoutingPoint:
        """Closest routing point to an arbitrary position (for snapping
        localisation fixes onto the graph)."""
        if not self._points:
            raise BuildingModelError("routing graph is empty")
        return min(
            self._points.values(), key=lambda p: p.position.distance_to(position)
        )
