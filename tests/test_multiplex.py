"""Standing-query multiplexing: the plan cache + shared-subplan layer.

Acceptance for :mod:`repro.stream.multiplex` through the Session
surface:

* **Identity corpus** — seeded batches of overlapping statements
  (duplicated texts, shared filter prefixes, stateful windows, and
  shared-ineligible table joins) run on ``connect(share_plans=False)``
  and on sharing sessions with 1, 2 and 4 shards; every cursor's sorted
  per-punctuation-segment emissions must match exactly.
* **Lifecycle** — interleaved ``Cursor.close`` / ``Session.close`` over
  cursors sharing one chain: closes are idempotent, siblings keep
  receiving, and the last release tears the chain DAG down exactly once.
* **Plan cache** — repeated text (any case/whitespace) hits; CREATE
  VIEW, attach, detach and drop_table bump the catalog schema epoch and
  a stale plan is evicted, never run.
* **Stats** — ``session.stats()`` exposes the cache and sharing
  counters, summed across shard engines.

Seed count: ``REPRO_MUX_SEEDS`` (default 6).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.api import StreamSource, connect
from repro.data import DataType, Row, Schema
from repro.errors import QueryError

SEEDS = int(os.environ.get("REPRO_MUX_SEEDS", "6"))

READINGS = Schema.of(
    ("room", DataType.STRING),
    ("host", DataType.STRING),
    ("temp", DataType.FLOAT),
    ("load", DataType.FLOAT),
)
MACHINES = Schema.of(
    ("name", DataType.STRING),
    ("room", DataType.STRING),
    ("cpu", DataType.FLOAT),
)
MACHINES_ROWS = [
    {"name": f"ws{i}", "room": f"lab{i % 3}", "cpu": float(i % 7)} for i in range(16)
]

TEMPLATES = [
    # Two projections over the same filter: shared Select cut.
    "select r.host, r.temp from Readings r where r.temp > {t0}",
    "select r.host, r.temp * 2.0 as t2 from Readings r where r.temp > {t0}",
    # Stateful chains: keyed windowed aggregation, DISTINCT, row window.
    "select r.room, count(*) as n from Readings r "
    "[range {w} seconds slide {w} seconds] group by r.room",
    "select r.host, min(r.temp) as lo, max(r.temp) as hi from Readings r "
    "[range {w} seconds slide {w} seconds] group by r.host",
    "select distinct r.host, r.room from Readings r where r.temp > {t0}",
    "select r.host, r.temp from Readings r [rows 25] where r.load > {l0}",
    # Fallback-only on a sharded pool.
    "select r.room, r.temp from Readings r order by r.temp",
    # Table scan: shared-ineligible (declined), must still be identical.
    "select r.host, m.room from Readings r [range 30 seconds], Machines m "
    "where r.host = m.name and r.temp > {t0}",
]


def _fill(template: str, rng: random.Random) -> str:
    return template.format(
        t0=round(rng.uniform(5.0, 40.0), 1),
        l0=round(rng.uniform(0.0, 0.5), 2),
        w=rng.choice([10, 20, 30]),
    )


def _corpus(rng: random.Random) -> list[str]:
    """Overlapping statement batch: every chosen text appears 1-3 times,
    and at least one is guaranteed duplicated (the sharing case)."""
    chosen = [
        _fill(template, rng)
        for template in rng.sample(TEMPLATES, rng.randint(3, 5))
    ]
    queries = [sql for sql in chosen for _ in range(rng.randint(1, 3))]
    queries.append(chosen[0])
    rng.shuffle(queries)
    return queries


def _rows(count: int, rng: random.Random):
    rooms = ["lab1", "lab2", "office3", None]
    rows, stamps, clock = [], [], 0.0
    for _ in range(count):
        rows.append(
            Row(
                READINGS,
                (
                    rooms[rng.randrange(4)],
                    f"ws{rng.randrange(16)}",
                    None if rng.random() < 0.08 else round(rng.uniform(-5, 80), 2),
                    round(rng.uniform(0, 1), 3),
                ),
                validate=False,
            )
        )
        clock += rng.uniform(0.05, 1.5)
        stamps.append(round(clock, 3))
    return rows, stamps


def _open_session(*, share: bool, shards: int = 1):
    session = connect(share_plans=share, shards=shards)
    session.attach(StreamSource("Readings", READINGS, rate=10.0, partition_by="host"))
    session.catalog.register_table("Machines", MACHINES, cardinality=len(MACHINES_ROWS))
    session.load("Machines", MACHINES_ROWS)
    return session


def _drive(session, cursors, rows, stamps, plan_rng: random.Random):
    """Feed in seeded chunks (per-element or batched), punctuating
    between chunks; sorted per-segment emissions per cursor."""
    segments = [[] for _ in cursors]
    marks = [0 for _ in cursors]

    def snapshot():
        for index, cursor in enumerate(cursors):
            elements = cursor._handle.sink.elements
            fresh = elements[marks[index]:]
            marks[index] = len(elements)
            segments[index].append(
                sorted((e.timestamp, repr(e.row.values)) for e in fresh)
            )

    offset = 0
    while offset < len(rows):
        size = plan_rng.randint(5, 60)
        chunk_rows = rows[offset : offset + size]
        chunk_stamps = stamps[offset : offset + size]
        if plan_rng.random() < 0.5:
            session.push_many("Readings", chunk_rows, chunk_stamps)
        else:
            for row, stamp in zip(chunk_rows, chunk_stamps):
                session.push("Readings", row, stamp)
        offset += size
        session.punctuate(chunk_stamps[-1])
        snapshot()
    session.punctuate(stamps[-1] + 200.0)
    snapshot()
    return segments


def _run(queries, rows, stamps, seed, *, share: bool, shards: int = 1):
    session = _open_session(share=share, shards=shards)
    cursors = [session.query(sql) for sql in queries]
    segments = _drive(session, cursors, rows, stamps, random.Random(seed * 31 + 7))
    stats = session.stats()
    session.close()
    return segments, stats


class TestSharedIdentityCorpus:
    """Sharing must be invisible in every cursor's emissions — same
    rows, same timestamps, same punctuation segments as fully private
    pipelines, at every shard count."""

    @pytest.mark.parametrize("seed", range(SEEDS))
    def test_identity_corpus(self, seed):
        rng = random.Random(seed)
        queries = _corpus(rng)
        rows, stamps = _rows(rng.randint(120, 300), rng)
        expected, baseline = _run(queries, rows, stamps, seed, share=False)
        assert baseline["sharing"]["chains"] == 0  # share_plans=False is private
        for shards in (1, 2, 4):
            got, stats = _run(queries, rows, stamps, seed, share=True, shards=shards)
            assert got == expected, (
                f"seed={seed} shards={shards}: emissions diverged under sharing"
            )
            # The duplicated statements really were multiplexed.
            assert stats["sharing"]["attached"] > 0
            assert stats["sharing"]["fan_out"] > stats["sharing"]["chains"]

    def test_table_join_is_declined_but_correct(self):
        session = _open_session(share=True)
        sql = (
            "select r.host, m.cpu from Readings r [range 30 seconds], Machines m "
            "where r.host = m.name and r.temp > 10.0"
        )
        c1 = session.query(sql)
        c2 = session.query(sql)
        session.push("Readings", {"room": "lab1", "host": "ws3", "temp": 20.0, "load": 0.5}, 1.0)
        session.punctuate(5.0)
        assert [r.values for r in c1.results()] == [r.values for r in c2.results()]
        assert len(c1.results()) == 1
        # Table scans cannot be shared (late tee attachment cannot
        # reproduce execute-time table replay): both admissions declined.
        assert session.stats()["sharing"]["declined"] == 2
        assert session.stats()["sharing"]["chains"] == 0
        session.close()


class TestSharedCursorLifecycle:
    SQL = "select r.host, r.temp from Readings r where r.temp > 20.0"

    def _push(self, session, temp: float, stamp: float):
        session.push(
            "Readings", {"room": "lab1", "host": "ws1", "temp": temp, "load": 0.5}, stamp
        )

    def test_interleaved_close_is_idempotent(self):
        session = _open_session(share=True)
        registry = session.engine.subplans
        c1 = session.query(self.SQL)
        c2 = session.query(self.SQL)
        c3 = session.query(self.SQL)
        assert sum(chain.tee.fan_out for chain in registry.live_chains) >= 3
        self._push(session, 25.0, 1.0)
        assert [len(c.results()) for c in (c1, c2, c3)] == [1, 1, 1]

        c1.close()
        c1.close()  # idempotent: the chain ref is released exactly once
        self._push(session, 30.0, 2.0)
        assert len(c1.results()) == 1  # frozen at close
        assert len(c2.results()) == 2 and len(c3.results()) == 2

        c2.close()
        self._push(session, 35.0, 3.0)
        assert len(c3.results()) == 3  # last subscriber still live
        c3.close()
        stats = registry.stats()
        assert stats["chains"] == 0 and stats["fan_out"] == 0
        assert stats["detached"] == stats["created"] + stats["attached"]
        session.close()
        c3.close()  # close after session close stays a no-op

    def test_session_close_releases_remaining_references(self):
        session = _open_session(share=True)
        registry = session.engine.subplans
        c1 = session.query(self.SQL)
        session.query(self.SQL)  # left open: Session.close must release it
        c1.close()
        session.close()
        stats = registry.stats()
        assert stats["chains"] == 0 and stats["fan_out"] == 0
        assert stats["detached"] == stats["created"] + stats["attached"]
        c1.close()  # still a no-op after everything is gone

    def test_prepared_executions_share_one_chain(self):
        session = _open_session(share=True)
        prepared = session.prepare(
            "select r.host, r.temp from Readings r where r.temp > :limit"
        )
        c1 = prepared.execute(limit=20.0)
        c2 = prepared.execute(limit=20.0)  # identical binding: shares
        c3 = prepared.execute(limit=40.0)  # different literal: own chain
        self._push(session, 30.0, 1.0)
        assert len(c1.results()) == 1 and len(c2.results()) == 1
        assert len(c3.results()) == 0
        assert session.stats()["sharing"]["attached"] >= 1
        for cursor in (c1, c2, c3):
            cursor.close()
        session.close()


class TestPlanCache:
    SQL = "select r.host, r.temp from Readings r where r.temp > 20.0"

    def test_normalized_text_hits(self):
        session = _open_session(share=True)
        session.query(self.SQL)
        session.query("SELECT  r.host, r.temp  FROM  readings r  WHERE r.temp > 20.0")
        stats = session.stats()["plan_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1
        session.prepare(self.SQL)  # prepared statements use the same cache
        assert session.stats()["plan_cache"]["hits"] == 2
        session.close()

    def test_cache_survives_but_reflects_table_updates(self):
        """A batch-routed cached plan re-evaluates current rows: the
        cache memoizes compilation, never results."""
        session = _open_session(share=True)
        sql = "select m.name from Machines m where m.cpu > 5.0"
        first = len(session.query(sql).results())
        session.load("Machines", [{"name": "new1", "room": "lab9", "cpu": 6.5}])
        second = len(session.query(sql).results())
        assert second == first + 1
        # load() refreshed catalog statistics without an epoch bump for
        # the *same* registration; the repeat was still served cached.
        assert session.stats()["plan_cache"]["hits"] >= 1
        session.close()

    def test_create_view_invalidates(self):
        session = _open_session(share=True)
        session.query(self.SQL)
        session.query(self.SQL)
        assert session.stats()["plan_cache"]["hits"] == 1
        epoch = session.stats()["schema_epoch"]
        session.query("create view hot as select r.host from Readings r where r.temp > 50.0")
        assert session.stats()["schema_epoch"] > epoch
        session.query(self.SQL)  # stale entry evicted, recompiled
        stats = session.stats()["plan_cache"]
        assert stats["invalidations"] == 1
        session.close()

    def test_detach_reattach_never_runs_stale_plan(self):
        session = _open_session(share=True)
        cursor = session.query(self.SQL)
        cursor.close()
        session.detach("Readings")
        # Same name, different shape: the old plan reads r.temp which no
        # longer exists — serving the cached plan would silently emit
        # rows of a dead schema.
        session.attach(
            StreamSource(
                "Readings",
                Schema.of(("room", DataType.STRING), ("celsius", DataType.FLOAT)),
                rate=10.0,
            )
        )
        with pytest.raises(QueryError):
            session.query(self.SQL)
        assert session.stats()["plan_cache"]["invalidations"] >= 1
        session.close()

    def test_drop_table_bumps_epoch(self):
        session = _open_session(share=True)
        sql = "select m.name from Machines m where m.cpu > 1.0"
        session.query(sql)
        epoch = session.stats()["schema_epoch"]
        session.engine.drop_table("Machines")
        assert session.catalog.schema_epoch == epoch + 1
        session.query(sql)  # recompiles against the (empty) table
        assert session.stats()["plan_cache"]["invalidations"] == 1
        session.close()

    def test_unshared_session_still_caches(self):
        session = _open_session(share=False)
        c1 = session.query(self.SQL)
        c2 = session.query(self.SQL)
        stats = session.stats()
        assert stats["plan_cache"]["hits"] == 1
        assert stats["sharing"]["chains"] == 0 and stats["sharing"]["created"] == 0
        session.push(
            "Readings", {"room": "lab1", "host": "ws1", "temp": 30.0, "load": 0.1}, 1.0
        )
        assert len(c1.results()) == len(c2.results()) == 1
        session.close()

    def test_capacity_evicts_lru(self):
        session = connect(plan_cache_size=2)
        session.attach(StreamSource("Readings", READINGS, rate=10.0))
        for threshold in (1.0, 2.0, 3.0):
            session.query(
                f"select r.host from Readings r where r.temp > {threshold}"
            ).close()
        stats = session.stats()["plan_cache"]
        assert stats["size"] == 2 and stats["evictions"] == 1
        session.close()


class TestStats:
    def test_stats_shape_and_sharded_aggregation(self):
        sql = "select r.host, r.temp from Readings r where r.temp > 20.0"

        def run(shards):
            session = _open_session(share=True, shards=shards)
            cursors = [session.query(sql), session.query(sql)]
            stats = session.stats()
            for cursor in cursors:
                cursor.close()
            emptied = session.stats()["sharing"]
            session.close()
            return stats, emptied

        single, _ = run(1)
        sharded, emptied = run(2)
        assert set(sharded) == {"plan_cache", "sharing", "analysis", "schema_epoch"}
        assert set(sharded["sharing"]) == {
            "chains", "fan_out", "created", "attached",
            "detached", "torn_down", "declined",
        }
        assert single["sharing"]["attached"] > 0
        # Partition-parallel replicas: every shard engine hosts the same
        # chain structure, and stats() sums them.
        for key in ("chains", "fan_out", "created", "attached"):
            assert sharded["sharing"][key] == 2 * single["sharing"][key]
        assert emptied["chains"] == 0 and emptied["fan_out"] == 0

    def test_stats_raises_after_close(self):
        session = connect()
        session.close()
        with pytest.raises(Exception):
            session.stats()
