"""Integration tests for the assembled SmartCIS application."""

import pytest

from repro import SmartCIS
from repro.errors import AspenError, BuildingModelError
from repro.smartcis import render_app
from repro.smartcis.queries import (
    FREE_MACHINE_QUERY,
    TEMPS_OF_MACHINES_IN_USE,
    power_by_room_sql,
)


@pytest.fixture(scope="module")
def app() -> SmartCIS:
    """One warmed-up application shared by read-only tests."""
    app = SmartCIS(seed=7, lab_count=2, desks_per_lab=2, server_count=2)
    app.start()
    app.simulator.run_for(25.0)
    return app


class TestMonitoringState:
    def test_room_status_collected(self, app):
        for room_id in app.building.rooms:
            assert app.state.room_is_open(room_id)  # everything starts open

    def test_seat_status_collected(self, app):
        assert app.state.free_seats()  # nobody seated yet

    def test_machine_temps_collected(self, app):
        assert app.state.machine_temp  # workstation motes reporting

    def test_machine_state_via_wrapper(self, app):
        assert "srv1" in app.state.machine_state

    def test_power_via_pdu_scrape(self, app):
        assert app.state.power
        assert all(obs.value > 0 for obs in app.state.power.values())

    def test_staleness_bounded_by_periods(self, app):
        staleness = app.state.staleness(app.simulator.now)
        assert staleness["seat_status"] <= 6.0
        assert staleness["room_status"] <= 11.0


class TestStateReactsToWorld:
    def test_closing_a_lab_is_observed(self):
        app = SmartCIS(seed=8, lab_count=2, desks_per_lab=2)
        app.start()
        app.simulator.run_for(15.0)
        assert app.state.room_is_open("lab1")
        room = app.building.room("lab1")
        room.lights_on = False
        room.door_open = False
        app.simulator.run_for(12.0)
        assert not app.state.room_is_open("lab1")

    def test_sitting_down_flips_seat_busy(self):
        app = SmartCIS(seed=8, lab_count=2, desks_per_lab=2)
        app.start()
        app.simulator.run_for(10.0)
        app.building.room("lab1").desk("d1").occupied = True
        app.simulator.run_for(6.0)
        assert not app.state.seat_is_free("lab1", "d1")
        assert app.state.seat_is_free("lab1", "d2")


class TestVisitorFlow:
    def test_add_locate_guide(self):
        app = SmartCIS(seed=9, lab_count=2, desks_per_lab=2)
        app.start()
        app.simulator.run_for(15.0)
        app.add_visitor("alice", needed="%Fedora%")
        app.simulator.run_for(6.0)
        assert app.locate_visitor("alice") == "lobby"
        guidance = app.guide_visitor("alice", "%Fedora%")
        assert guidance.route.start == "lobby"
        assert guidance.route.points[-1] == f"{guidance.room}.{guidance.desk}"
        # The machine really has Fedora.
        spec = next(s for s in app.deployment.machine_specs if s.host == guidance.host)
        assert "Fedora" in spec.software

    def test_guidance_prefers_nearest(self):
        app = SmartCIS(seed=9, lab_count=3, desks_per_lab=2)
        app.start()
        app.simulator.run_for(15.0)
        app.add_visitor("bob", needed="%")
        app.simulator.run_for(6.0)
        guidance = app.guide_visitor("bob")
        for host, room, desk in app.find_free_machines("%"):
            other = app.router.route("lobby", app.deployment.desk_point(room, desk))
            assert guidance.route.distance <= other.distance + 1e-9

    def test_unknown_visitor(self, app):
        with pytest.raises(BuildingModelError):
            app.locate_visitor("nobody")
        with pytest.raises(BuildingModelError):
            app.guide_visitor("nobody")

    def test_duplicate_visitor_rejected(self):
        app = SmartCIS(seed=10, lab_count=2)
        app.start()
        app.add_visitor("x")
        with pytest.raises(BuildingModelError):
            app.add_visitor("x")

    def test_no_matching_machine_returns_empty(self, app):
        assert app.find_free_machines("%VAX%") == []

    def test_guide_impossible_software(self):
        app = SmartCIS(seed=10, lab_count=2)
        app.start()
        app.simulator.run_for(12.0)
        app.add_visitor("y")
        app.simulator.run_for(5.0)
        with pytest.raises(BuildingModelError, match="no free machine"):
            app.guide_visitor("y", "%VAX%")


class TestQueries:
    def test_figure1_query_end_to_end(self):
        app = SmartCIS(seed=7, lab_count=2, desks_per_lab=2)
        app.start()
        execution = app.execute_sql(FREE_MACHINE_QUERY)
        app.add_visitor("alice", needed="%Fedora%")
        app.simulator.run_for(30.0)
        results = {tuple(r.values) for r in execution.results()}
        assert results
        rooms = {r[1] for r in results}
        assert rooms <= set(app.building.rooms)
        # Every result names a Fedora machine's desk.
        fedora_desks = {
            (s.room, s.desk)
            for s in app.deployment.machine_specs
            if "Fedora" in s.software
        }
        assert {(r[1], r[2]) for r in results} <= fedora_desks

    def test_proximity_join_query(self):
        app = SmartCIS(seed=7, lab_count=2, desks_per_lab=2)
        app.start()
        app.building.room("lab1").desk("d1").occupied = True
        execution = app.execute_sql(TEMPS_OF_MACHINES_IN_USE)
        app.simulator.run_for(30.0)
        hosts = {r["wt.host"] for r in execution.results()}
        assert hosts == {"lab1-ws1"}  # only the occupied desk's machine

    def test_power_rollup_query(self):
        app = SmartCIS(seed=7, lab_count=2, desks_per_lab=2)
        app.start()
        handle = app.stream_engine.execute(
            app.builder.build_sql(power_by_room_sql(window_seconds=30))
        )
        app.simulator.run_for(65.0)
        rooms = {r["m.room"] for r in handle.results}
        assert "lab1" in rooms and "machineroom" in rooms

    def test_execute_statement_view_and_recursive(self):
        app = SmartCIS(seed=7, lab_count=2)
        app.start()
        name = app.execute_statement(
            "create view HotRooms as (select wt.room from WorkstationTemps wt "
            "where wt.temp_c > 30)"
        )
        assert name == "HotRooms" and app.catalog.has_view("HotRooms")
        rows = app.execute_statement(
            """
            WITH RECURSIVE reach(src, dst) AS (
              SELECT rp.src, rp.dst FROM RoutingPoints rp
              UNION
              SELECT r.src, rp.dst FROM reach r, RoutingPoints rp WHERE r.dst = rp.src
            ) SELECT src, dst FROM reach WHERE src = 'lobby'
            """
        )
        destinations = {r["reach.dst"] for r in rows}
        assert "lab1.center" in destinations

    def test_explain_requires_select(self, app):
        with pytest.raises(AspenError):
            app.explain_sql("create view X as select p.id from Person p")


class TestAlarmsAndDisplays:
    def test_failure_triggers_both_alarms(self):
        app = SmartCIS(seed=4, lab_count=2, desks_per_lab=2)
        app.start()
        app.add_overtemp_alarm(33.0)
        app.add_overload_alarm(0.95)
        app.simulator.run_for(12.0)
        baseline_rules = {e.rule for e in app.alarms.events}
        assert "overtemp" not in baseline_rules
        app.deployment.machines["lab1-ws1"].fail()
        app.simulator.run_for(30.0)
        rules = {e.rule for e in app.alarms.events if e.key == "lab1-ws1"}
        assert rules == {"overtemp", "overload"}

    def test_alarm_latency_includes_network_delay(self):
        app = SmartCIS(seed=4, lab_count=2)
        app.start()
        app.add_overtemp_alarm(33.0)
        app.deployment.machines["lab1-ws1"].fail()
        app.simulator.run_for(40.0)
        overtemps = app.alarms.events_for("overtemp")
        assert overtemps and all(e.latency > 0 for e in overtemps)

    def test_alarm_dedup_until_cleared(self):
        app = SmartCIS(seed=4, lab_count=2)
        app.start()
        app.add_overload_alarm(0.9)
        app.deployment.machines["lab1-ws1"].fail()

        def ws1_events():
            return [e for e in app.alarms.events_for("overload") if e.key == "lab1-ws1"]

        app.simulator.run_for(40.0)
        assert len(ws1_events()) == 1
        app.simulator.run_for(40.0)
        assert len(ws1_events()) == 1  # deduped while the condition holds
        app.alarms.clear("overload", "lab1-ws1")
        app.simulator.run_for(20.0)
        assert len(ws1_events()) == 2  # re-fires after the clear

    def test_output_to_display_routes_results(self):
        app = SmartCIS(seed=4, lab_count=2)
        app.start()
        app.execute_sql(
            "select wt.host, wt.temp_c from WorkstationTemps wt "
            "output to display 'lobby'"
        )
        app.simulator.run_for(25.0)
        display = app.displays.display("lobby")
        assert display.deliveries > 0
        assert display.latest(3)


class TestGui:
    def test_render_shows_rooms_and_markers(self, app):
        text = render_app(app)
        assert "lab1" in text and "lab2" in text
        assert "F" in text  # free machines marked

    def test_closed_lab_hatched_and_unavailable(self):
        app = SmartCIS(seed=6, lab_count=2, desks_per_lab=2)
        app.start()
        app.simulator.run_for(15.0)
        room = app.building.room("lab1")
        room.lights_on = False
        room.door_open = False
        app.simulator.run_for(12.0)
        text = render_app(app)
        # Closed labs have dashes inside their box and U desk markers.
        lab1_line = [l for l in text.splitlines() if "U" in l]
        assert lab1_line
        assert "F" in text  # lab2 still free

    def test_route_and_visitor_drawn(self):
        app = SmartCIS(seed=6, lab_count=2, desks_per_lab=2)
        app.start()
        app.simulator.run_for(15.0)
        app.add_visitor("alice")
        app.simulator.run_for(5.0)
        guidance = app.guide_visitor("alice")
        text = render_app(app, visitor="alice", route=guidance.route, details=["x"])
        assert "@" in text and "*" in text and "details" in text

    def test_rendering_is_deterministic(self, app):
        assert render_app(app) == render_app(app)
