"""Unbounded-state detection: prove each stateful operator's memory bounded.

Mirrors the plan compiler's window inference exactly
(:meth:`~repro.stream.compiler.PlanCompiler._scan_window` /
``_side_window``): an un-windowed stream scan receives the engine's
default RANGE window, stored tables are UNBOUNDED but finite, and a
join side's window is the widest RANGE window beneath it. With those
rules, each stateful operator's memory is provably bounded — or not:

* A **join** side whose inferred window is UNBOUNDED over an *infinite*
  input (a stream scan or remote feed beneath it) never evicts its
  buffer → ``RA101`` (error).
* **DISTINCT** keeps one entry per distinct row forever; over an
  infinite input the seen-set is bounded only by value cardinality →
  ``RA102`` (warning — SmartCIS value domains are small, but nothing
  enforces that).
* An **aggregate without a RANGE window** runs in running mode
  (:class:`~repro.stream.operators.AggregateOp`): groups accumulate for
  the stream's lifetime and are never cleared. With group keys or
  DISTINCT calls the state grows with key/value cardinality →
  ``RA103`` warning; a global aggregate of plain calls keeps O(1)
  accumulators → ``RA103`` info (running totals, bounded). An
  *explicit* ``[unbounded]`` window says "aggregate the whole history"
  over a stream that has no end → ``RA104`` (error).

RANGE-windowed operators evict past the window horizon and are bounded;
plans reading only stored tables are bounded by the tables themselves.
"""

from __future__ import annotations

from repro.catalog import SourceKind
from repro.data.windows import WindowKind, WindowSpec
from repro.plan.logical import (
    Aggregate,
    Distinct,
    Join,
    LogicalOp,
    RemoteSource,
    Scan,
)
from repro.stream.compiler import DEFAULT_STREAM_WINDOW

from repro.analysis.diagnostics import ERROR, INFO, WARNING, Diagnostic, diag


def is_infinite(node: LogicalOp) -> bool:
    """Whether ``node``'s subtree reads at least one input that never
    ends: a stream-kind scan or a remote fragment feed."""
    for leaf in node.walk():
        if isinstance(leaf, RemoteSource):
            return True
        if isinstance(leaf, Scan) and leaf.entry.kind is SourceKind.STREAM:
            return True
    return False


def scan_window(scan: Scan, default: WindowSpec = DEFAULT_STREAM_WINDOW) -> WindowSpec:
    """The window the compiler will give ``scan``."""
    if scan.window is not None:
        return scan.window
    if scan.entry.kind is SourceKind.TABLE:
        return WindowSpec.unbounded()
    return default


def side_window(
    node: LogicalOp, default: WindowSpec = DEFAULT_STREAM_WINDOW
) -> WindowSpec:
    """The join-side window the compiler will infer for ``node``'s
    subtree: widest RANGE (then ROWS, then NOW) window beneath it;
    UNBOUNDED when nothing beneath carries a finite window."""
    finite: list[WindowSpec] = []
    for leaf in node.walk():
        if isinstance(leaf, RemoteSource):
            finite.append(default)
        elif isinstance(leaf, Scan):
            window = scan_window(leaf, default)
            if window.kind in (WindowKind.RANGE, WindowKind.ROWS, WindowKind.NOW):
                finite.append(window)
    if not finite:
        return WindowSpec.unbounded()
    for kind in (WindowKind.RANGE, WindowKind.ROWS):
        sized = [w for w in finite if w.kind is kind]
        if sized:
            return max(sized, key=lambda w: w.size)
    return finite[0]


def check_bounds(
    plan: LogicalOp, default_window: WindowSpec = DEFAULT_STREAM_WINDOW
) -> list[Diagnostic]:
    """Prove every stateful operator bounded; ``RA1xx`` diagnostics
    where the proof fails."""
    out: list[Diagnostic] = []
    for node in plan.walk():
        if isinstance(node, Join):
            _check_join(node, default_window, out)
        elif isinstance(node, Distinct):
            _check_distinct(node, out)
        elif isinstance(node, Aggregate):
            _check_aggregate(node, out)
    return out


def _check_join(node: Join, default: WindowSpec, out: list[Diagnostic]) -> None:
    for label, side in (("left", node.left), ("right", node.right)):
        if not is_infinite(side):
            continue  # finite side: buffer bounded by the stored rows
        window = side_window(side, default)
        if window.kind is WindowKind.UNBOUNDED:
            out.append(
                diag(
                    "RA101",
                    ERROR,
                    f"{label} join side buffers every row of an infinite "
                    "stream (UNBOUNDED window, nothing ever evicts)",
                    operator=node.describe(),
                    hint="give the stream scan a [range ...] window",
                )
            )


def _check_distinct(node: Distinct, out: list[Diagnostic]) -> None:
    if is_infinite(node.child):
        out.append(
            diag(
                "RA102",
                WARNING,
                "DISTINCT over an infinite stream keeps one entry per "
                "distinct row forever; memory is bounded only by the "
                "value domain",
                operator=node.describe(),
            )
        )


def _check_aggregate(node: Aggregate, out: list[Diagnostic]) -> None:
    if not is_infinite(node.child):
        return
    window = node.window
    if window is not None and window.kind is WindowKind.RANGE:
        return  # windowed mode evicts past the horizon: bounded
    if window is not None and window.kind is WindowKind.UNBOUNDED:
        out.append(
            diag(
                "RA104",
                ERROR,
                "UNBOUNDED window aggregates the whole history of an "
                "infinite stream; the buffer never stops growing",
                operator=node.describe(),
                hint="use a [range ...] window or drop the window for "
                "punctuation-driven running totals",
            )
        )
        return
    # Running mode: groups accumulate forever (AggregateOp never clears
    # them). Growth depends on what keys the state:
    unbounded = bool(node.group_by) or any(
        item.call.distinct for item in node.aggregates
    )
    out.append(
        diag(
            "RA103",
            WARNING if unbounded else INFO,
            (
                "running-mode aggregate state grows with group-key / "
                "DISTINCT-value cardinality and is never cleared"
                if unbounded
                else "global running totals keep O(1) accumulators for the "
                "stream's lifetime"
            ),
            operator=node.describe(),
        )
    )
