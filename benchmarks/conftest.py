"""Shared helpers for the experiment benches.

Every bench regenerates one artifact from DESIGN.md §4 (a figure, a
demo capability, or an ablation): it *prints* the rows/series the paper
reports — shape, not absolute numbers — and asserts the qualitative
claim. ``pytest benchmarks/ --benchmark-only -s`` shows the tables.
"""

from __future__ import annotations

import pytest


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one experiment's output table to stdout."""
    print()
    print(f"== {title} ==")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table_printer():
    return print_table
