"""Source and device catalog.

The federated optimizer's cost normalisation (paper §3) relies on
"catalog information about the sensor network diameter, sampling rates,
etc." — this module is that catalog. It registers every relation the
query processor can name, records which engine *hosts* it, and carries
the statistics both sub-optimizers consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.data.schema import Schema
from repro.errors import CatalogError


class SourceKind(enum.Enum):
    """Whether a relation is a continuous stream or a stored table."""

    STREAM = "stream"
    TABLE = "table"


class EngineLocation(enum.Enum):
    """Which ASPEN engine natively hosts a relation.

    SENSOR sources live on motes (light, temperature, RFID sightings);
    STREAM sources are produced by wrappers on PCs (PDU power, machine
    state, web feeds); DATABASE sources are stored tables available to
    the stream engine (machine configs, routing points, coordinates).
    """

    SENSOR = "sensor"
    STREAM = "stream"
    DATABASE = "database"


@dataclass
class SourceStatistics:
    """Optimizer statistics for one relation.

    Attributes:
        rate: Mean tuples per second (streams) — drives both engines'
            cost models.
        cardinality: Row count (tables) or live-window row estimate.
        selectivity: Default predicate selectivity for this source when
            no column-level estimate exists.
        distinct_values: Per-column number-of-distinct-values estimates,
            used for join selectivity.
    """

    rate: float = 0.0
    cardinality: int = 0
    selectivity: float = 0.1
    distinct_values: dict[str, int] = field(default_factory=dict)

    def ndv(self, column: str, default: int = 10) -> int:
        """Number of distinct values estimate for ``column``."""
        bare = column.rsplit(".", 1)[-1]
        return self.distinct_values.get(bare, default)


@dataclass
class DeviceInfo:
    """Sensor-engine metadata for a relation hosted on motes.

    Attributes:
        node_ids: Motes producing this relation's tuples.
        sample_period: Seconds between samples on each mote.
        attribute: The physical quantity sensed ("temperature", "light", ...).
    """

    node_ids: tuple[int, ...] = ()
    sample_period: float = 10.0
    attribute: str = ""


@dataclass
class SourceEntry:
    """One catalog registration."""

    name: str
    schema: Schema
    kind: SourceKind
    location: EngineLocation
    statistics: SourceStatistics = field(default_factory=SourceStatistics)
    device: DeviceInfo | None = None
    description: str = ""

    @property
    def is_sensor(self) -> bool:
        return self.location is EngineLocation.SENSOR


@dataclass
class ViewEntry:
    """A named view definition (stored as its defining AST)."""

    name: str
    query: object  # repro.sql.ast.SelectQuery; object avoids an import cycle
    description: str = ""


@dataclass
class DisplayEntry:
    """A registered output display (paper: GUI laptops mapped into the building)."""

    name: str
    location: str = ""
    description: str = ""


@dataclass
class NetworkInfo:
    """Whole-deployment facts used for cost normalisation.

    Attributes:
        diameter: Hop count across the sensor network (longest shortest
            path to the basestation).
        radio_bytes_per_second: Effective mote radio throughput.
        per_message_overhead_bytes: Header bytes per radio message.
        lan_latency: One-way latency between stream-engine nodes (s).
        lan_bandwidth: Bytes/second between stream-engine nodes.
        radio_seconds_per_message: Time one radio hop adds to delivery.
    """

    diameter: int = 4
    radio_bytes_per_second: float = 3000.0
    per_message_overhead_bytes: int = 11
    lan_latency: float = 0.001
    lan_bandwidth: float = 12_500_000.0
    radio_seconds_per_message: float = 0.02


class Catalog:
    """Registry of sources, views, displays and deployment facts.

    One catalog instance is shared by the parser-analyzer, both engine
    optimizers and the federated optimizer. Mutation is registration
    plus :meth:`unregister_source` (used by ``Session.detach`` for
    symmetric attach/detach); deployments that are configured once never
    need the latter.
    """

    def __init__(self) -> None:
        self._sources: dict[str, SourceEntry] = {}
        self._views: dict[str, ViewEntry] = {}
        self._displays: dict[str, DisplayEntry] = {}
        self.network = NetworkInfo()
        #: Monotonic counter bumped on every change that can invalidate
        #: a compiled plan (source attach/detach, view creation, table
        #: drops). Plan caches compare their stored epoch against this.
        self.schema_epoch: int = 0

    def bump_epoch(self) -> int:
        """Advance the schema epoch; returns the new value."""
        self.schema_epoch += 1
        return self.schema_epoch

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def register_source(
        self,
        name: str,
        schema: Schema,
        kind: SourceKind,
        location: EngineLocation,
        *,
        statistics: SourceStatistics | None = None,
        device: DeviceInfo | None = None,
        description: str = "",
    ) -> SourceEntry:
        """Register a relation. Raises :class:`CatalogError` on name clashes."""
        key = name.lower()
        if key in self._sources or key in self._views:
            raise CatalogError(f"source or view {name!r} is already registered")
        if location is EngineLocation.SENSOR and device is None:
            device = DeviceInfo()
        entry = SourceEntry(
            name=name,
            schema=schema,
            kind=kind,
            location=location,
            statistics=statistics or SourceStatistics(),
            device=device,
            description=description,
        )
        self._sources[key] = entry
        self.bump_epoch()
        return entry

    def register_stream(
        self, name: str, schema: Schema, *, rate: float = 1.0, **kwargs
    ) -> SourceEntry:
        """Shorthand: a wrapper-produced stream hosted on the stream engine."""
        stats = kwargs.pop("statistics", None) or SourceStatistics(rate=rate)
        return self.register_source(
            name, schema, SourceKind.STREAM, EngineLocation.STREAM, statistics=stats, **kwargs
        )

    def register_table(
        self, name: str, schema: Schema, *, cardinality: int = 0, **kwargs
    ) -> SourceEntry:
        """Shorthand: a stored database table."""
        stats = kwargs.pop("statistics", None) or SourceStatistics(cardinality=cardinality)
        return self.register_source(
            name, schema, SourceKind.TABLE, EngineLocation.DATABASE, statistics=stats, **kwargs
        )

    def register_sensor_stream(
        self, name: str, schema: Schema, device: DeviceInfo, *, rate: float | None = None, **kwargs
    ) -> SourceEntry:
        """Shorthand: a mote-hosted sensor stream."""
        if rate is None:
            per_node = 1.0 / device.sample_period if device.sample_period > 0 else 0.0
            rate = per_node * max(len(device.node_ids), 1)
        stats = kwargs.pop("statistics", None) or SourceStatistics(rate=rate)
        return self.register_source(
            name,
            schema,
            SourceKind.STREAM,
            EngineLocation.SENSOR,
            statistics=stats,
            device=device,
            **kwargs,
        )

    def source(self, name: str) -> SourceEntry:
        """Look up a source by (case-insensitive) name."""
        entry = self._sources.get(name.lower())
        if entry is None:
            raise CatalogError(
                f"unknown source {name!r}; registered: {sorted(self.source_names())}"
            )
        return entry

    def unregister_source(self, name: str) -> bool:
        """Remove a source registration; returns whether it existed.

        The inverse of :meth:`register_source`, used for symmetric
        ``Session.attach``/``detach``. Running queries keep their bound
        schemas; only future name resolution is affected.
        """
        existed = self._sources.pop(name.lower(), None) is not None
        if existed:
            self.bump_epoch()
        return existed

    def has_source(self, name: str) -> bool:
        return name.lower() in self._sources

    def source_names(self) -> list[str]:
        return [entry.name for entry in self._sources.values()]

    def sources_at(self, location: EngineLocation) -> list[SourceEntry]:
        """All sources hosted by one engine."""
        return [e for e in self._sources.values() if e.location is location]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def register_view(self, name: str, query: object, description: str = "") -> ViewEntry:
        """Register a named view (its definition is a parsed SelectQuery)."""
        key = name.lower()
        if key in self._sources or key in self._views:
            raise CatalogError(f"source or view {name!r} is already registered")
        entry = ViewEntry(name, query, description)
        self._views[key] = entry
        self.bump_epoch()
        return entry

    def view(self, name: str) -> ViewEntry:
        entry = self._views.get(name.lower())
        if entry is None:
            raise CatalogError(f"unknown view {name!r}")
        return entry

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view_names(self) -> list[str]:
        return [entry.name for entry in self._views.values()]

    # ------------------------------------------------------------------
    # Displays
    # ------------------------------------------------------------------
    def register_display(self, name: str, location: str = "", description: str = "") -> DisplayEntry:
        """Register an output display (GUI endpoint)."""
        key = name.lower()
        if key in self._displays:
            raise CatalogError(f"display {name!r} is already registered")
        entry = DisplayEntry(name, location, description)
        self._displays[key] = entry
        return entry

    def display(self, name: str) -> DisplayEntry:
        entry = self._displays.get(name.lower())
        if entry is None:
            raise CatalogError(f"unknown display {name!r}")
        return entry

    def has_display(self, name: str) -> bool:
        return name.lower() in self._displays

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable inventory (used by the demo GUI's detail panel)."""
        lines = ["Catalog:"]
        for entry in self._sources.values():
            stats = entry.statistics
            extra = (
                f"rate={stats.rate:g}/s" if entry.kind is SourceKind.STREAM
                else f"rows={stats.cardinality}"
            )
            lines.append(
                f"  {entry.name} [{entry.kind.value}@{entry.location.value}] "
                f"{len(entry.schema)} cols, {extra}"
            )
        for view_entry in self._views.values():
            lines.append(f"  {view_entry.name} [view]")
        for display_entry in self._displays.values():
            lines.append(f"  {display_entry.name} [display] at {display_entry.location or '?'}")
        return "\n".join(lines)
