"""Tests for the distributed stream engine layer."""

import pytest

from repro.data import CollectingConsumer, DataType, Punctuation, Row, Schema, StreamElement
from repro.errors import ExecutionError
from repro.plan import scans_of
from repro.stream import DistributedStreamEngine, Exchange, Placement


@pytest.fixture
def distributed(catalog, simulator):
    return DistributedStreamEngine(catalog, simulator, ["coord", "w1", "w2"])


SCHEMA = Schema.of(("x", DataType.INT))


class TestExchange:
    def test_adds_latency(self, catalog, simulator, distributed):
        sink = CollectingConsumer()
        exchange = Exchange(
            simulator, sink,
            distributed.nodes["w1"], distributed.nodes["coord"],
            latency=0.5, bandwidth=1e6, row_bytes=100,
        )
        exchange.push(StreamElement(Row(SCHEMA, (1,)), 0.0))
        assert len(sink) == 0  # not yet delivered
        simulator.run_for(1.0)
        assert len(sink) == 1
        assert exchange.bytes_sent == 100

    def test_punctuation_crosses_too(self, simulator, distributed):
        sink = CollectingConsumer()
        exchange = Exchange(
            simulator, sink,
            distributed.nodes["w1"], distributed.nodes["coord"],
            latency=0.1, bandwidth=1e6, row_bytes=10,
        )
        exchange.push(Punctuation(5.0))
        simulator.run_for(0.2)
        assert sink.punctuations == [Punctuation(5.0)]
        assert exchange.elements_sent == 0  # punctuation not counted as data


class TestPlacement:
    def test_default_placement_spreads_scans(self, distributed, builder):
        plan = builder.build_sql(
            "select p.id from Person p, Machines m where p.room = m.room"
        )
        placement = distributed.default_placement(plan)
        scan_nodes = {placement.assignments[s.plan_id] for s in scans_of(plan)}
        assert scan_nodes <= {"w1", "w2"}
        assert placement.coordinator == "coord"

    def test_wrap_edges_interposes_exchanges(self, distributed, builder):
        plan = builder.build_sql(
            "select p.id from Person p, Machines m where p.room = m.room"
        )
        placement = distributed.default_placement(plan)
        consumers = {
            node.plan_id: CollectingConsumer() for node in plan.walk()
        }
        wrapped = distributed.wrap_edges(plan, consumers, placement)
        # Scans live on workers, their parents on the coordinator: both
        # scan edges cross nodes.
        crossing = [w for w in wrapped.values() if isinstance(w, Exchange)]
        assert len(crossing) == 2
        assert distributed.total_network_bytes() == 0  # nothing sent yet

    def test_report_lists_nodes(self, distributed, builder):
        plan = builder.build_sql("select p.id from Person p")
        placement = distributed.default_placement(plan)
        consumers = {node.plan_id: CollectingConsumer() for node in plan.walk()}
        distributed.wrap_edges(plan, consumers, placement)
        report = distributed.report()
        assert "coord" in report and "w1" in report

    def test_requires_at_least_one_node(self, catalog, simulator):
        with pytest.raises(ExecutionError):
            DistributedStreamEngine(catalog, simulator, [])

    def test_traffic_accounting(self, distributed, simulator):
        sink = CollectingConsumer()
        exchange = Exchange(
            simulator, sink,
            distributed.nodes["w1"], distributed.nodes["coord"],
            latency=0.01, bandwidth=1e6, row_bytes=50,
        )
        distributed.exchanges.append(exchange)
        for i in range(4):
            exchange.push(StreamElement(Row(SCHEMA, (i,)), 0.0))
        simulator.run_for(1.0)
        assert distributed.total_network_elements() == 4
        assert distributed.total_network_bytes() == 200


class TestDistributedExecution:
    def test_end_to_end_query_crosses_lan(self, catalog, simulator, distributed, builder):
        plan = builder.build_sql("select t.room, t.temp from Temps t where t.temp > 20")
        query = distributed.execute(plan)
        query.push("Temps", {"room": "lab1", "temp": 25.0}, 0.0)
        assert len(query.results) == 0  # still in flight on the LAN
        simulator.run_for(1.0)
        assert len(query.results) == 1
        assert distributed.total_network_bytes() > 0

    def test_coordinator_placement_avoids_exchanges(self, catalog, simulator, builder):
        from repro.stream import DistributedStreamEngine, Placement

        single = DistributedStreamEngine(catalog, simulator, ["solo"])
        plan = builder.build_sql("select t.temp from Temps t")
        query = single.execute(plan, Placement("solo"))
        query.push("Temps", {"room": "x", "temp": 1.0}, 0.0)
        # Same-node edge: delivered synchronously, no traffic.
        assert len(query.results) == 1
        assert single.total_network_bytes() == 0

    def test_distributed_join_merges_after_delivery(self, catalog, simulator, distributed, builder):
        plan = builder.build_sql(
            "select t.temp, p.id from Temps t, Person p where t.room = p.room"
        )
        query = distributed.execute(plan)
        query.push("Temps", {"room": "lab1", "temp": 24.0}, 0.0)
        query.push("Person", {"id": 1, "room": "lab1", "needed": "%"}, 0.0)
        simulator.run_for(1.0)
        assert len(query.results) == 1

    def test_punctuation_flows_distributed(self, catalog, simulator, distributed, builder):
        plan = builder.build_sql(
            "select t.room, count(*) as n from Temps t group by t.room"
        )
        query = distributed.execute(plan)
        query.push("Temps", {"room": "a", "temp": 1.0}, 0.0)
        query.punctuate(5.0)
        simulator.run_for(1.0)
        assert [r["n"] for r in query.results] == [1]
