"""Tests for motes, batteries, radios and the sensor network."""

import pytest

from repro.errors import EnergyExhaustedError, SensorNetworkError
from repro.runtime import Simulator
from repro.sensor import (
    Battery,
    DEFAULT_ENERGY_MODEL,
    LinkQuality,
    Mote,
    MoteRole,
    Position,
    RadioModel,
    SensorNetwork,
)


class TestBattery:
    def test_spend_tracks_categories(self):
        battery = Battery(100.0)
        battery.spend(10.0, "tx")
        battery.spend(5.0, "tx")
        battery.spend(1.0, "cpu")
        assert battery.spent("tx") == 15.0
        assert battery.spent() == 16.0
        assert battery.remaining_mj == 84.0

    def test_depletion_raises(self):
        battery = Battery(1.0)
        battery.spend(1.5, "tx")  # allowed to overdraw once
        with pytest.raises(EnergyExhaustedError):
            battery.spend(0.1, "tx")
        assert battery.depleted

    def test_negative_spend_rejected(self):
        with pytest.raises(ValueError):
            Battery(1.0).spend(-1.0, "tx")

    def test_fraction_remaining(self):
        battery = Battery(100.0)
        battery.spend(25.0, "rx")
        assert battery.fraction_remaining == pytest.approx(0.75)


class TestEnergyModel:
    def test_tx_costs_more_than_rx(self):
        assert DEFAULT_ENERGY_MODEL.tx_cost(20) > DEFAULT_ENERGY_MODEL.rx_cost(20)

    def test_cost_grows_with_payload(self):
        assert DEFAULT_ENERGY_MODEL.tx_cost(100) > DEFAULT_ENERGY_MODEL.tx_cost(10)


class TestMote:
    def test_sampling_costs_energy(self):
        mote = Mote(1, Position(0, 0), MoteRole.SEAT)
        mote.attach_sensor("light", lambda: 700.0)
        before = mote.battery.remaining_mj
        assert mote.sample("light") == 700.0
        assert mote.battery.remaining_mj < before
        assert mote.samples_taken == 1

    def test_missing_sensor(self):
        mote = Mote(1, Position(0, 0), MoteRole.SEAT)
        with pytest.raises(SensorNetworkError, match="light"):
            mote.sample("light")

    def test_can_hear_range(self):
        a = Mote(1, Position(0, 0), MoteRole.SEAT, radio_range=100)
        b = Mote(2, Position(99, 0), MoteRole.SEAT, radio_range=100)
        c = Mote(3, Position(101, 0), MoteRole.SEAT, radio_range=100)
        assert a.can_hear(b) and not a.can_hear(c)

    def test_basestation_effectively_infinite_battery(self):
        base = Mote(0, Position(0, 0), MoteRole.BASESTATION)
        assert base.battery.capacity_mj >= 1e11

    def test_negative_id_rejected(self):
        with pytest.raises(SensorNetworkError):
            Mote(-1, Position(0, 0), MoteRole.SEAT)


class TestRadioModel:
    def test_inner_disc_lossless(self):
        radio = RadioModel(reliable_fraction=0.5)
        a = Mote(1, Position(0, 0), MoteRole.SEAT, radio_range=100)
        b = Mote(2, Position(40, 0), MoteRole.SEAT, radio_range=100)
        link = radio.link(a, b)
        assert link.delivery_probability == 1.0
        assert link.expected_transmissions == 1.0

    def test_degrades_toward_edge(self):
        radio = RadioModel(reliable_fraction=0.5, floor_probability=0.6)
        a = Mote(1, Position(0, 0), MoteRole.SEAT, radio_range=100)
        near = Mote(2, Position(60, 0), MoteRole.SEAT)
        far = Mote(3, Position(99, 0), MoteRole.SEAT)
        assert radio.link(a, near).delivery_probability > radio.link(a, far).delivery_probability
        assert radio.link(a, far).delivery_probability >= 0.6

    def test_out_of_range_is_none(self):
        radio = RadioModel()
        a = Mote(1, Position(0, 0), MoteRole.SEAT, radio_range=100)
        b = Mote(2, Position(150, 0), MoteRole.SEAT)
        assert radio.link(a, b) is None

    def test_rssi_decreases_with_distance(self):
        radio = RadioModel()
        a = Mote(1, Position(0, 0), MoteRole.BEACON, radio_range=100)
        near = Mote(2, Position(10, 0), MoteRole.HALLWAY)
        far = Mote(3, Position(80, 0), MoteRole.HALLWAY)
        assert radio.rssi(a, near) > radio.rssi(a, far)

    def test_expected_transmissions_infinite_at_zero(self):
        assert LinkQuality(1.0, 0.0).expected_transmissions == float("inf")


class TestTopology:
    def test_collection_tree_depths(self, line_network):
        for i in range(1, 6):
            assert line_network.hops_to_base(i) == i
        assert line_network.diameter == 5

    def test_parents_point_toward_base(self, line_network):
        for i in range(2, 6):
            assert line_network.parent_of(i) == i - 1
        assert line_network.parent_of(1) == 0

    def test_basestation_has_no_parent(self, line_network):
        with pytest.raises(SensorNetworkError):
            line_network.parent_of(0)

    def test_children(self, line_network):
        assert line_network.children_of(0) == [1]
        assert line_network.children_of(5) == []

    def test_route_between_arbitrary_motes(self, line_network):
        assert line_network.route(2, 5) == [2, 3, 4, 5]
        assert line_network.route(3, 3) == [3]

    def test_disconnected_mote_detected(self, simulator):
        net = SensorNetwork(simulator)
        net.add_basestation(Position(0, 0))
        net.add_mote(Mote(1, Position(1000, 0), MoteRole.SEAT))
        net.rebuild_topology()
        assert not net.is_connected()
        with pytest.raises(SensorNetworkError, match="disconnected"):
            net.hops_to_base(1)

    def test_duplicate_mote_id_rejected(self, line_network):
        with pytest.raises(SensorNetworkError):
            line_network.add_mote(Mote(1, Position(0, 0), MoteRole.SEAT))

    def test_missing_basestation(self, simulator):
        net = SensorNetwork(simulator)
        net.add_mote(Mote(1, Position(0, 0), MoteRole.SEAT))
        with pytest.raises(SensorNetworkError, match="basestation"):
            net.basestation


class TestMessaging:
    def test_delivery_charges_both_ends(self, line_network, simulator):
        delivered = []
        line_network.send(2, 0, 10, "hello", lambda p, t: delivered.append((p, t)))
        simulator.run_for(1.0)
        assert delivered and delivered[0][0] == "hello"
        assert line_network.motes[2].messages_sent >= 1
        assert line_network.motes[1].messages_received >= 1
        assert line_network.motes[1].messages_sent >= 1  # relay

    def test_latency_proportional_to_hops(self, line_network, simulator):
        times = {}
        line_network.send(1, 0, 10, "near", lambda p, t: times.__setitem__("near", t))
        line_network.send(5, 0, 10, "far", lambda p, t: times.__setitem__("far", t))
        simulator.run_for(2.0)
        assert times["far"] > times["near"]

    def test_send_to_base_follows_tree(self, line_network, simulator):
        got = []
        line_network.send_to_base(4, 8, {"v": 1}, lambda p, t: got.append(p))
        simulator.run_for(1.0)
        assert got == [{"v": 1}]
        assert line_network.stats.deliveries >= 4

    def test_same_node_delivery_is_immediate(self, line_network, simulator):
        got = []
        line_network.send(0, 0, 5, "self", lambda p, t: got.append(t))
        assert got == [simulator.now]

    def test_stats_snapshot_delta(self, line_network, simulator):
        before = line_network.stats.snapshot()
        line_network.send(3, 0, 10)
        simulator.run_for(1.0)
        delta = line_network.stats.delta(before)
        assert delta.transmissions >= 3
        assert delta.bytes_transmitted > 0

    def test_dead_sender_drops(self, line_network, simulator):
        mote = line_network.motes[3]
        mote.battery.spend(mote.battery.capacity_mj + 1, "tx")
        before_drops = line_network.stats.drops
        line_network.send(3, 0, 10)
        simulator.run_for(1.0)
        assert line_network.stats.drops > before_drops

    def test_total_energy_excludes_basestation(self, line_network, simulator):
        line_network.send(5, 0, 10)
        simulator.run_for(1.0)
        total = line_network.total_energy_spent()
        assert total > 0
        assert line_network.min_battery_fraction() < 1.0
