"""The PC-side stream engine: continuous queries over wrapper feeds.

One :class:`StreamEngine` hosts any number of continuous queries. Source
feeds (wrappers, the sensor-engine basestation, database tables) are
registered once; each running query's Scan ports subscribe to the feeds
they read. Stored tables are replayed into newly started queries so a
query joining streams against ``Machines`` sees the full table.

The engine is deliberately synchronous: pushing an element runs the
whole operator pipeline inline. Distribution (operators placed on
different PCs with LAN latency) is layered on top in
:mod:`repro.stream.distributed`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.catalog import Catalog, SourceKind
from repro.data.streams import (
    CollectingConsumer,
    Punctuation,
    StreamConsumer,
    StreamElement,
)
from repro.data.tuples import Row
from repro.data.windows import WindowSpec
from repro.errors import ExecutionError
from repro.plan.logical import LogicalOp
from repro.stream.compiler import DEFAULT_STREAM_WINDOW, CompiledPlan, PlanCompiler

_query_ids = itertools.count(1)


@dataclass
class QueryHandle:
    """A running continuous query.

    Attributes:
        query_id: Engine-assigned identifier.
        plan: The logical plan being executed.
        compiled: The operator pipeline.
        sink: Collects every result row the query emits.
    """

    query_id: int
    plan: LogicalOp
    compiled: CompiledPlan
    sink: CollectingConsumer

    @property
    def results(self) -> list[Row]:
        """All result rows emitted so far."""
        return self.sink.rows

    def latest_batch(self) -> list[Row]:
        """Rows emitted since the last punctuation boundary observed."""
        return [e.row for e in self.sink.elements if e.timestamp >= self._last_watermark()]

    def _last_watermark(self) -> float:
        if not self.sink.punctuations:
            return float("-inf")
        return self.sink.punctuations[-1].watermark


class StreamEngine:
    """Hosts continuous queries and routes source data into them.

    Args:
        catalog: Shared catalog (source schemas and kinds).
        deliver: Optional display callback for OUTPUT TO plans
            ``(display_name, element) -> None``.
        default_window: Window applied to un-windowed stream scans.
    """

    def __init__(
        self,
        catalog: Catalog,
        deliver: Callable[[str, StreamElement], None] | None = None,
        default_window: WindowSpec = DEFAULT_STREAM_WINDOW,
    ):
        self._catalog = catalog
        self._compiler = PlanCompiler(deliver, default_window)
        self._queries: dict[int, QueryHandle] = {}
        self._tables: dict[str, list[StreamElement]] = {}
        self._watermarks: dict[str, float] = {}
        self.elements_ingested = 0

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def load_table(self, name: str, rows: list[Row | Mapping[str, Any]], timestamp: float = 0.0) -> None:
        """Load (or extend) a stored table; replayed into future queries
        and pushed into currently running ones."""
        entry = self._catalog.source(name)
        if entry.kind is not SourceKind.TABLE:
            raise ExecutionError(f"{name!r} is a stream; push elements instead")
        elements = [
            StreamElement(self._coerce_row(entry.schema, row), timestamp, name)
            for row in rows
        ]
        self._tables.setdefault(entry.name, []).extend(elements)
        for handle in self._queries.values():
            for port in handle.compiled.ports_for(name):
                for element in elements:
                    port.consumer.push(element)

    def table_rows(self, name: str) -> list[Row]:
        """Current contents of a loaded table."""
        entry = self._catalog.source(name)
        return [e.row for e in self._tables.get(entry.name, [])]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def execute(self, plan: LogicalOp) -> QueryHandle:
        """Start a continuous query; returns its handle immediately."""
        sink = CollectingConsumer()
        compiled = self._compiler.compile(plan, sink)
        handle = QueryHandle(next(_query_ids), plan, compiled, sink)
        self._queries[handle.query_id] = handle
        # Replay stored tables into the new query's table scans.
        for port in compiled.ports:
            if port.scan is None:
                continue
            stored = self._tables.get(port.scan.entry.name)
            if stored:
                for element in stored:
                    port.consumer.push(element)
        return handle

    def stop(self, handle: QueryHandle) -> None:
        """Stop routing data into a query."""
        self._queries.pop(handle.query_id, None)

    @property
    def running_queries(self) -> list[QueryHandle]:
        return list(self._queries.values())

    # ------------------------------------------------------------------
    # Stream ingestion
    # ------------------------------------------------------------------
    def push(
        self,
        source: str,
        row: Row | Mapping[str, Any],
        timestamp: float,
    ) -> None:
        """Push one element of ``source`` into every query scanning it."""
        entry = self._catalog.source(source)
        element = StreamElement(self._coerce_row(entry.schema, row), timestamp, entry.name)
        self.elements_ingested += 1
        for handle in self._queries.values():
            for port in handle.compiled.ports_for(source):
                port.consumer.push(element)

    def push_remote(
        self, name: str, values: Mapping[str, Any] | Row, timestamp: float
    ) -> None:
        """Push an element into RemoteSource ports (no catalog entry).

        ``values`` may be a mapping over the remote schema's bare or full
        names, or an already-shaped Row; positional reschema happens at
        the port.
        """
        self.elements_ingested += 1
        for handle in self._queries.values():
            for port in handle.compiled.ports_for(name):
                if port.scan is not None:
                    continue
                schema = self._remote_schema(handle, name)
                if isinstance(values, Row):
                    row = values.with_schema(schema)
                else:
                    row = self._remote_row(schema, values)
                port.consumer.push(StreamElement(row, timestamp, name))

    def _remote_schema(self, handle: QueryHandle, name: str):
        from repro.plan.logical import RemoteSource

        for node in handle.plan.walk():
            if isinstance(node, RemoteSource) and node.name.lower() == name.lower():
                return node.schema
        raise ExecutionError(f"query {handle.query_id} has no remote source {name!r}")

    @staticmethod
    def _remote_row(schema, values: Mapping[str, Any]) -> Row:
        out = []
        for f in schema:
            if f.name in values:
                out.append(values[f.name])
            elif f.bare_name in values:
                out.append(values[f.bare_name])
            else:
                raise ExecutionError(f"remote tuple is missing field {f.name!r}")
        return Row(schema, out, validate=False)

    def punctuate(self, watermark: float, sources: list[str] | None = None) -> None:
        """Advance the watermark on ``sources`` (default: every source any
        running query reads, including table scans)."""
        punctuation = Punctuation(watermark)
        for handle in self._queries.values():
            for port in handle.compiled.ports:
                if sources is None or any(
                    port.source_name.lower() == s.lower() for s in sources
                ):
                    port.consumer.push(punctuation)

    # ------------------------------------------------------------------
    def _coerce_row(self, schema, row: Row | Mapping[str, Any]) -> Row:
        if isinstance(row, Row):
            if len(row) != len(schema):
                raise ExecutionError(
                    f"row arity {len(row)} does not match schema arity {len(schema)}"
                )
            return row.with_schema(schema) if row.schema != schema else row
        return Row.from_mapping(schema, row)
