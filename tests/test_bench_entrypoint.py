"""Tier-1 smoke for the bench tooling (`make bench` / python -m benchmarks).

Runs the expression-compilation bench at a tiny scale and checks the
artifact contract — not the speedup thresholds, which are asserted by
the bench itself when run at full scale (timing assertions would be
flaky inside the CI test suite).
"""

import json


def test_bench_expr_compile_smoke(tmp_path):
    from benchmarks.bench_expr_compile import run_benchmarks, write_artifact

    results = run_benchmarks(scale=0.01)
    path = write_artifact(results, tmp_path)

    data = json.loads(path.read_text())
    assert data["benchmark"] == "expr_compile"
    pipelines = data["pipelines"]
    for name in ("filter_project", "join", "recursive_fixpoint"):
        entry = pipelines[name]
        assert entry["rows"] > 0
        assert entry["compiled_rows_per_s"] > 0
        assert entry["interpreted_rows_per_s"] > 0
        assert entry["speedup"] is not None


def test_bench_runner_module_lists_all_benches():
    from benchmarks.__main__ import BENCH_DIR

    names = sorted(p.name for p in BENCH_DIR.glob("bench_*.py"))
    assert "bench_expr_compile.py" in names
    assert len(names) >= 12
