"""The SmartCIS application facade.

One :class:`SmartCIS` object assembles the whole demo (paper Figure 1):
the simulated Moore building and its sensor deployment, the in-network
sensor engine, the PC-side stream engine, the federated optimizer and
executor, wrappers over machines / PDUs / web sources, RFID
localisation, the routing service, alarms, displays and the GUI's state
store.

Query access and source lifecycle go through a
:class:`repro.api.Session` bound over the app's catalog and engines:
``app.query(sql)`` / ``app.prepare(sql)`` run SQL text end-to-end —
plans touching the sensor relations route through the session's
federated backend automatically, so :meth:`execute_sql` /
:meth:`explain_sql` are thin aliases kept for the demo scripts, not a
second query path — and wrappers/punctuation attach through the
session so :meth:`stop` shuts everything down deterministically.

Typical use::

    with SmartCIS(seed=7) as app:
        app.start()
        app.simulator.run_for(30)                 # let sensors report
        visitor = app.add_visitor("alice", needed="%Fedora%")
        app.simulator.run_for(10)                 # beacon gets detected
        guidance = app.guide_visitor("alice")     # nearest free Fedora box
        print(guidance.route.render())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.building import (
    Deployment,
    Occupant,
    Route,
    StreamRouter,
    build_moore_deployment,
)
from repro.catalog import Catalog, DeviceInfo, SourceStatistics
from repro.core import FederatedPlan
from repro.data.schema import Schema
from repro.data.types import DataType
from repro.errors import AspenError, BuildingModelError
from repro.plan import PlanBuilder
from repro.runtime import Simulator
from repro.sensor import (
    Beacon,
    Localizer,
    RFIDService,
    SensorEngine,
    SensorRelation,
)
import repro.smartcis.queries as canned
from repro.smartcis.alarms import AlarmRule, AlarmService
from repro.smartcis.display import DisplayManager
from repro.smartcis.monitoring import (
    SEAT_FREE_LIGHT_THRESHOLD,
    BuildingStateStore,
)
from repro.sql import parse
from repro.sql.ast import CreateView, RecursiveQuery, SelectQuery
from repro.stream import StreamEngine
from repro.wrappers import (
    MachineStateWrapper,
    PduWrapper,
    PowerDistributionUnit,
    Punctuator,
    WeatherService,
    WeatherWrapper,
    register_database_tables,
)

#: Room light level above which an area sensor reports "open".
ROOM_OPEN_LIGHT_THRESHOLD = 300.0

_beacon_ids = itertools.count(500)
_person_ids = itertools.count(1)


@dataclass
class Guidance:
    """Result of guiding a visitor to a machine."""

    person: str
    host: str
    room: str
    desk: str
    route: Route

    def render(self) -> str:
        return (
            f"{self.person}: {self.host} in {self.room}/{self.desk} via "
            f"{self.route.render()}"
        )


class SmartCIS:
    """The assembled SmartCIS system over a simulated deployment.

    Args:
        seed: Simulation seed (one seed, one world).
        lab_count / desks_per_lab / server_count: Building scale.
    """

    def __init__(
        self,
        seed: int = 0,
        lab_count: int = 4,
        desks_per_lab: int = 4,
        server_count: int = 4,
    ):
        self.simulator = Simulator(seed)
        self.deployment: Deployment = build_moore_deployment(
            self.simulator,
            lab_count=lab_count,
            desks_per_lab=desks_per_lab,
            server_count=server_count,
        )
        self.building = self.deployment.building
        self.network = self.deployment.network

        self.catalog = Catalog()
        self.displays = DisplayManager()
        self.state = BuildingStateStore()
        self.stream_engine = StreamEngine(self.catalog, deliver=self.displays.deliver)
        self.sensor_engine = SensorEngine(self.network, on_result=self._on_sensor_result)
        from repro.api import Session

        #: The unified query/source façade over this app's components.
        #: Sensor-touching SELECTs route through its federated backend,
        #: which owns the one plan-partitioning implementation; the app
        #: only contributes deployment knowledge (the pairing provider).
        self.session = Session(
            catalog=self.catalog,
            simulator=self.simulator,
            engine=self.stream_engine,
            sensor_engine=self.sensor_engine,
            network=self.network,
        )
        self.builder = PlanBuilder(self.catalog)
        self.session.backend(
            "federated"
        ).optimizer.sensor_optimizer.pairing_provider = self._sensor_pairing
        self.alarms = AlarmService(
            self.stream_engine, self.builder, lambda: self.simulator.now
        )
        self.router = StreamRouter(self.deployment.graph)
        detector_positions = {
            mote_id: self.deployment.graph.point(point).position
            for mote_id, point in self.deployment.detector_points.items()
        }
        self.localizer = Localizer(detector_positions)
        self.rfid = RFIDService(self.network, on_sighting=self._on_sighting)
        self.occupants: dict[str, Occupant] = {}
        self._beacon_of: dict[str, int] = {}
        self.wrappers: list[Any] = []
        self.punctuator: Punctuator | None = None
        self._collections: list[Any] = []  # deployed sensor collections
        self._started = False
        self._stopped = False

        self._register_catalog()
        self._register_sensor_relations()
        self._register_displays()

    # ==================================================================
    # Registration
    # ==================================================================
    def _register_catalog(self) -> None:
        catalog = self.catalog
        deployment = self.deployment
        catalog.network.diameter = max(self.network.diameter, 1)

        catalog.register_sensor_stream(
            "AreaSensors",
            Schema.of(("room", DataType.STRING), ("status", DataType.STRING)),
            DeviceInfo(tuple(deployment.room_mote_ids()), 10.0, "light"),
            statistics=SourceStatistics(
                rate=len(deployment.room_mote_ids()) / 10.0,
                distinct_values={"room": len(self.building.rooms), "status": 2},
            ),
            description="room open/closed from room-mote light level",
        )
        catalog.register_sensor_stream(
            "SeatSensors",
            Schema.of(
                ("room", DataType.STRING),
                ("desk", DataType.STRING),
                ("status", DataType.STRING),
            ),
            DeviceInfo(tuple(deployment.seat_mote_ids()), 5.0, "light"),
            statistics=SourceStatistics(
                rate=len(deployment.seat_mote_ids()) / 5.0,
                distinct_values={
                    "room": len(self.building.rooms),
                    "desk": max(len(deployment.desk_motes), 1),
                    "status": 2,
                },
            ),
            description="desk free/busy from chair light level",
        )
        catalog.register_sensor_stream(
            "WorkstationTemps",
            Schema.of(
                ("host", DataType.STRING),
                ("room", DataType.STRING),
                ("desk", DataType.STRING),
                ("temp_c", DataType.FLOAT),
            ),
            DeviceInfo(tuple(deployment.workstation_mote_ids()), 10.0, "temperature"),
            statistics=SourceStatistics(
                rate=len(deployment.workstation_mote_ids()) / 10.0,
                distinct_values={"host": max(len(deployment.machines), 1)},
            ),
            description="machine case temperature from workstation motes",
        )
        catalog.register_sensor_stream(
            "RFIDSightings",
            Schema.of(
                ("detector", DataType.INT),
                ("beacon", DataType.INT),
                ("rssi", DataType.FLOAT),
                ("heard_at", DataType.FLOAT),
            ),
            DeviceInfo(tuple(deployment.detector_points), 2.0, "rfid"),
            statistics=SourceStatistics(rate=1.0, distinct_values={"beacon": 4}),
            description="beacon sightings by hallway detectors",
        )

        machine_count = max(len(deployment.machines), 1)
        catalog.register_stream(
            "MachineState",
            Schema.of(
                ("host", DataType.STRING),
                ("room", DataType.STRING),
                ("desk", DataType.STRING),
                ("jobs", DataType.INT),
                ("users", DataType.INT),
                ("cpu", DataType.FLOAT),
                ("memory_mb", DataType.FLOAT),
                ("web_requests", DataType.INT),
            ),
            rate=machine_count / 5.0,
            description="soft sensors: jobs, users, cpu, memory, web requests",
        )
        catalog.register_stream(
            "Power",
            Schema.of(
                ("pdu", DataType.STRING),
                ("outlet", DataType.INT),
                ("host", DataType.STRING),
                ("watts", DataType.FLOAT),
            ),
            rate=machine_count / 10.0,
            description="PDU wattage scraped every 10 s",
        )
        catalog.register_stream(
            "Weather",
            Schema.of(
                ("observed_at", DataType.FLOAT),
                ("outdoor_temp_c", DataType.FLOAT),
                ("condition", DataType.STRING),
            ),
            rate=1 / 300.0,
        )
        catalog.register_stream(
            "Person",
            Schema.of(
                ("id", DataType.INT),
                ("name", DataType.STRING),
                ("room", DataType.STRING),
                ("needed", DataType.STRING),
            ),
            rate=0.02,
            description="visitors announcing required software",
        )

        register_database_tables(catalog)
        catalog.register_table(
            "Route",
            Schema.of(
                ("start", DataType.STRING),
                ("end", DataType.STRING),
                ("path", DataType.STRING),
                ("distance", DataType.FLOAT),
            ),
            cardinality=0,
            description="precomputed routes between points and rooms",
        )

        # The paper's demo view.
        view = parse(canned.OPEN_MACHINE_INFO_VIEW)
        assert isinstance(view, CreateView)
        catalog.register_view(view.name, view.query, "open labs' free desks")

    def _register_sensor_relations(self) -> None:
        deployment = self.deployment
        building = self.building
        room_of_mote = {mote: room for room, mote in deployment.room_motes.items()}
        desk_of_seat = {
            seat: key for key, (seat, _) in deployment.desk_motes.items()
        }
        host_of_ws: dict[int, tuple[str, str, str]] = {}
        for (room_id, desk_id), (_, ws) in deployment.desk_motes.items():
            if ws is not None:
                host = building.room(room_id).desk(desk_id).machine_host or ""
                host_of_ws[ws] = (host, room_id, desk_id)

        def area_sampler(mote):
            room_id = room_of_mote[mote.mote_id]
            light = mote.sample("light")
            status = "open" if light > ROOM_OPEN_LIGHT_THRESHOLD else "closed"
            # Door state folds in: a shut lab reads closed regardless of light.
            if not building.room(room_id).door_open:
                status = "closed"
            return {"room": room_id, "status": status}

        def seat_sampler(mote):
            room_id, desk_id = desk_of_seat[mote.mote_id]
            light = mote.sample("light")
            status = "free" if light > SEAT_FREE_LIGHT_THRESHOLD else "busy"
            return {"room": room_id, "desk": desk_id, "status": status}

        def temp_sampler(mote):
            host, room_id, desk_id = host_of_ws[mote.mote_id]
            return {
                "host": host,
                "room": room_id,
                "desk": desk_id,
                "temp_c": round(mote.sample("temperature"), 2),
            }

        engine = self.sensor_engine
        engine.register_relation(
            SensorRelation(
                "AreaSensors",
                self.catalog.source("AreaSensors").schema,
                deployment.room_mote_ids(),
                area_sampler,
                period=10.0,
            )
        )
        engine.register_relation(
            SensorRelation(
                "SeatSensors",
                self.catalog.source("SeatSensors").schema,
                deployment.seat_mote_ids(),
                seat_sampler,
                period=5.0,
            )
        )
        engine.register_relation(
            SensorRelation(
                "WorkstationTemps",
                self.catalog.source("WorkstationTemps").schema,
                deployment.workstation_mote_ids(),
                temp_sampler,
                period=10.0,
            )
        )

    def _register_displays(self) -> None:
        self.displays.register("lobby", "lobby")
        self.catalog.register_display("lobby", "lobby")
        for room in self.building.labs():
            name = f"{room.room_id}-display"
            self.displays.register(name, room.room_id)
            self.catalog.register_display(name, room.room_id)

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def start(self) -> None:
        """Deploy monitoring collections, start wrappers and punctuation.

        Every wrapper is attached through :attr:`session`, which owns the
        shutdown: :meth:`stop` (or closing the session) stops each
        wrapper's poll loop and the punctuator deterministically.
        """
        if self._started:
            raise AspenError("SmartCIS is already started")
        self._started = True

        # Raw monitoring collections (the state store and canned stream
        # queries feed off these).
        for relation in ("AreaSensors", "SeatSensors", "WorkstationTemps"):
            self._collections.append(self.sensor_engine.deploy_collection(relation))

        from repro.api import WrapperSource

        machines = list(self.deployment.machines.values())
        machine_wrapper = MachineStateWrapper(
            self.stream_engine, self.simulator, machines, period=5.0
        )
        self.session.attach(WrapperSource(wrapper=machine_wrapper))
        self.wrappers.append(machine_wrapper)

        # One PDU per room that has machines.
        by_room: dict[str, list] = {}
        for machine in machines:
            by_room.setdefault(machine.spec.room, []).append(machine)
        for room_id, room_machines in sorted(by_room.items()):
            pdu = PowerDistributionUnit(f"pdu-{room_id}")
            for outlet, machine in enumerate(room_machines, start=1):
                pdu.plug(outlet, machine)
            wrapper = PduWrapper(self.stream_engine, self.simulator, pdu)
            self.session.attach(WrapperSource(wrapper=wrapper, name=f"Power-{room_id}"))
            self.wrappers.append(wrapper)

        weather = WeatherWrapper(
            self.stream_engine, self.simulator, WeatherService(self.simulator)
        )
        self.session.attach(WrapperSource(wrapper=weather))
        self.wrappers.append(weather)

        # Slack covers sensor delivery delay (elements carry sample time).
        self.punctuator = self.session.add_punctuator(period=1.0, slack=0.5)

        # Feed the control-logic state store from the wrapper streams.
        self._observe_stream("MachineState", self.state.on_machine_state)
        self._observe_stream("Power", self.state.on_power)

        self._load_tables()

    def stop(self) -> None:
        """Shut the application down deterministically: stop deployed
        sensor collections, every attached wrapper, the punctuator and
        all running session queries. Idempotent; safe after an explicit
        wrapper stop (Wrapper.stop and StreamEngine.stop both are)."""
        if self._stopped:
            return
        self._stopped = True
        for deployed in self._collections:
            deployed.stop()
        self._collections.clear()
        self.session.close()

    def __enter__(self) -> "SmartCIS":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _observe_stream(self, source: str, handler) -> None:
        """Run an internal SELECT * over ``source`` whose results update
        the monitoring state store."""
        cursor = self.session.query(f"select * from {source} s")

        def on_element(element) -> None:
            values = {
                f.bare_name: v
                for f, v in zip(element.row.schema, element.row.values)
            }
            handler(values, element.timestamp)

        cursor.subscribe(on_element, elements=True)

    def _load_tables(self) -> None:
        from repro.wrappers.database import load_table

        deployment = self.deployment
        load_table(self.stream_engine, self.catalog, "Machines", deployment.machine_rows())
        load_table(
            self.stream_engine, self.catalog, "DetectorCoords", deployment.detector_coord_rows()
        )
        load_table(
            self.stream_engine, self.catalog, "RoutingPoints", deployment.graph.edge_rows()
        )
        load_table(self.stream_engine, self.catalog, "Rooms", deployment.room_rows())
        load_table(self.stream_engine, self.catalog, "Route", self._route_rows())

    def _route_rows(self) -> list[dict[str, Any]]:
        """The demo's ``Route`` table: from every navigation point to every
        room (rooms addressed by id; paths via the closure router)."""
        rows: list[dict[str, Any]] = []
        rooms = list(self.building.rooms.values())
        for point in self.deployment.graph.points:
            if "." in point.name and not point.name.endswith(".door"):
                continue
            for room in rooms:
                try:
                    route = self.router.route(
                        point.name, self.deployment.room_center_point(room.room_id)
                    )
                except AspenError:
                    continue
                rows.append(
                    {
                        "start": point.name,
                        "end": room.room_id,
                        "path": route.render(),
                        "distance": route.distance,
                    }
                )
        return rows

    # ==================================================================
    # Deployment knowledge
    # ==================================================================
    def _sensor_pairing(self, left_entry, right_entry):
        """Joinable mote pairs for in-network joins, from the deployment.

        * AreaSensors ⋈ SeatSensors: a room's area mote pairs with every
          seat mote in that room (the view's ``sa.room = ss.room``).
        * WorkstationTemps ⋈ SeatSensors: the workstation mote pairs with
          the seat mote on the same desk (the §3 proximity join).
        """
        from repro.sensor import JoinPair

        names = (left_entry.name.lower(), right_entry.name.lower())
        deployment = self.deployment

        def area_seat(swap: bool) -> list:
            pairs = []
            for (room_id, _desk), (seat, _ws) in deployment.desk_motes.items():
                room_mote = deployment.room_motes.get(room_id)
                if room_mote is None:
                    continue
                a, b = (room_mote, seat) if not swap else (seat, room_mote)
                pairs.append(JoinPair(a, b))
            return pairs

        def temp_seat(swap: bool) -> list:
            pairs = []
            for (_room, _desk), (seat, ws) in deployment.desk_motes.items():
                if ws is None:
                    continue
                a, b = (ws, seat) if not swap else (seat, ws)
                pairs.append(JoinPair(a, b))
            return pairs

        if names == ("areasensors", "seatsensors"):
            return area_seat(swap=False)
        if names == ("seatsensors", "areasensors"):
            return area_seat(swap=True)
        if names == ("workstationtemps", "seatsensors"):
            return temp_seat(swap=False)
        if names == ("seatsensors", "workstationtemps"):
            return temp_seat(swap=True)
        return None

    # ==================================================================
    # Data-flow callbacks
    # ==================================================================
    def _on_sensor_result(self, name: str, values: dict[str, Any], time: float) -> None:
        key = name.lower()
        if key == "areasensors":
            self.state.on_area_sensor(values, time)
        elif key == "seatsensors":
            self.state.on_seat_sensor(values, time)
        elif key == "workstationtemps":
            self.state.on_workstation_temp(values, time)
        if self.catalog.has_source(name):
            self.stream_engine.push(name, values, time)
        else:
            self.stream_engine.push_remote(name, values, time)

    def _on_sighting(self, values: dict[str, Any], time: float) -> None:
        self.localizer.observe(values, time)
        self.stream_engine.push("RFIDSightings", values, time)

    # ==================================================================
    # Visitors and guidance
    # ==================================================================
    def add_visitor(self, name: str, needed: str = "%", start: str = "lobby") -> Occupant:
        """Add a visitor carrying an RFID beacon, standing at ``start``."""
        if name in self.occupants:
            raise BuildingModelError(f"occupant {name!r} already exists")
        occupant = Occupant(
            name, next(_beacon_ids), self.simulator, self.deployment.graph, start
        )
        self.occupants[name] = occupant
        self._beacon_of[name] = occupant.beacon_id
        self.rfid.add_beacon(
            Beacon(occupant.beacon_id, occupant.position_fn, period=2.0)
        )
        self.stream_engine.push(
            "Person",
            {
                "id": next(_person_ids),
                "name": name,
                "room": start,
                "needed": needed,
            },
            self.simulator.now,
        )
        return occupant

    def locate_visitor(self, name: str) -> str | None:
        """Current routing point of a visitor per RFID localisation.

        Returns the name of the routing point of the strongest recent
        detector, or None when the beacon has not been heard lately.
        """
        beacon = self._beacon_of.get(name)
        if beacon is None:
            raise BuildingModelError(f"unknown occupant {name!r}")
        detector = self.localizer.strongest_detector(beacon, self.simulator.now)
        if detector is None:
            return None
        return self.deployment.detector_points.get(detector)

    def find_free_machines(self, needed: str = "%") -> list[tuple[str, str, str]]:
        """(host, room, desk) of free machines matching ``needed`` (LIKE),
        in open labs, per the current monitoring state."""
        from repro.sql.expressions import BinaryOp, ColumnRef, Literal

        matcher = BinaryOp("LIKE", ColumnRef("software"), Literal(needed))
        out = []
        for spec in self.deployment.machine_specs:
            if spec.room == "machineroom":
                continue
            if not self.state.room_is_open(spec.room):
                continue
            if not self.state.seat_is_free(spec.room, spec.desk):
                continue
            row = {"software": spec.software}

            class _R:  # minimal row adapter
                def __getitem__(self, k, row=row):
                    return row[k.rsplit(".", 1)[-1]]

            if matcher.eval(_R()) is True:
                out.append((spec.host, spec.room, spec.desk))
        return sorted(out)

    def guide_visitor(self, name: str, needed: str | None = None) -> Guidance:
        """The demo's headline interaction: route a visitor to the nearest
        free machine with the requested software."""
        occupant = self.occupants.get(name)
        if occupant is None:
            raise BuildingModelError(f"unknown occupant {name!r}")
        location = self.locate_visitor(name) or occupant.current_point
        pattern = needed if needed is not None else "%"
        candidates = self.find_free_machines(pattern)
        if not candidates:
            raise BuildingModelError(
                f"no free machine matches {pattern!r} right now"
            )
        best: tuple[float, Guidance] | None = None
        for host, room, desk in candidates:
            try:
                route = self.router.route(location, self.deployment.desk_point(room, desk))
            except AspenError:
                continue
            guidance = Guidance(name, host, room, desk, route)
            if best is None or route.distance < best[0]:
                best = (route.distance, guidance)
        if best is None:
            raise BuildingModelError("no reachable free machine")
        return best[1]

    # ==================================================================
    # Query interface
    # ==================================================================
    @property
    def optimizer(self):
        """The session's federated optimizer (one partitioning
        implementation for the whole app — EXPLAIN tooling reaches the
        same instance ``app.query`` routes through)."""
        return self.session.backend("federated").optimizer

    def query(self, text: str, **kwargs):
        """Run SQL text through the unified Session API; returns a
        :class:`repro.api.Cursor`. SELECTs touching the sensor
        relations execute *federated* (in-network fragments + stream
        residual); other continuous SELECTs run on the stream engine;
        table-only and recursive statements evaluate one-shot.
        """
        return self.session.query(text, **kwargs)

    def prepare(self, text: str, **kwargs):
        """Prepare SQL text with ``:name`` parameters, compiled once."""
        return self.session.prepare(text, **kwargs)

    def explain_sql(self, text: str) -> FederatedPlan:
        """Partition a SELECT federatedly and return the costed plan
        (thin alias of :meth:`repro.api.Session.explain`)."""
        return self.session.explain(text)

    def execute_sql(self, text: str):
        """Start a federated continuous query; returns the session's
        :class:`repro.api.Cursor` (thin alias of ``query`` with the
        federated route forced — mixed plans take it automatically)."""
        return self.session.query(text, engine="federated")

    def execute_statement(self, text: str):
        """Execute any statement (deprecation shim over the Session
        API): CREATE VIEW registers a view and returns its name; SELECT
        starts a *federated* continuous query and returns its Cursor;
        WITH RECURSIVE materialises a snapshot and returns its rows."""
        statement = parse(text)
        if isinstance(statement, CreateView):
            return self.session.query(text).view_name
        if isinstance(statement, SelectQuery):
            return self.execute_sql(text)
        if isinstance(statement, RecursiveQuery):
            return self.session.query(text).results()
        raise AspenError(f"unsupported statement {type(statement).__name__}")

    # ==================================================================
    # Schema mappings (the paper's roadmap item, usable from the facade)
    # ==================================================================
    @property
    def mappings(self):
        """The application's mapping registry (created on first use)."""
        if not hasattr(self, "_mappings"):
            from repro.core import MappingRegistry

            self._mappings = MappingRegistry(self.catalog)
        return self._mappings

    def register_mapping(self, name: str, definitions: list[str]):
        """Register a mediated relation over this deployment's sources."""
        return self.mappings.register(name, definitions)

    def execute_mediated(self, sql_text: str):
        """Reformulate a query over mediated relations and run every
        variant through the Session (sensor-touching variants execute
        federated); returns a handle whose ``results`` is the union of
        the variants'."""
        from repro.core import MediatedExecution

        return MediatedExecution(
            [
                self.session.query(variant.render())
                for variant in self.mappings.reformulate(sql_text)
            ]
        )

    # ==================================================================
    # Alarms
    # ==================================================================
    def add_overtemp_alarm(self, threshold_c: float = 35.0) -> None:
        """Fire when any workstation exceeds ``threshold_c``."""
        self.alarms.add_rule(
            AlarmRule(
                name="overtemp",
                sql=canned.overtemp_alarm_sql(threshold_c),
                key_column="wt.host",
                message=lambda row: (
                    f"{row['wt.host']} at {row['wt.temp_c']:.1f}C exceeds "
                    f"{threshold_c:.1f}C"
                ),
            )
        )

    def add_overload_alarm(self, threshold: float = 0.85) -> None:
        """Fire when any machine's CPU exceeds ``threshold``."""
        self.alarms.add_rule(
            AlarmRule(
                name="overload",
                sql=canned.overload_alarm_sql(threshold),
                key_column="ms.host",
                message=lambda row: (
                    f"{row['ms.host']} cpu {row['ms.cpu']:.2f} exceeds {threshold:.2f}"
                ),
            )
        )
