"""The Session façade: one stable surface from SQL text to live results.

``connect(...)`` returns a :class:`Session` that owns the whole query
lifecycle the rest of the package implements in layers: lexing/parsing
(:mod:`repro.sql`), semantic analysis, plan construction
(:mod:`repro.plan`), and execution on whichever backend fits the
statement. Callers never import a parser, an analyzer or a builder —
they hand the session SQL text and get a :class:`~repro.api.Cursor`
back.

Routing rules (``session.query(text)``):

* ``CREATE VIEW``            → registered in the catalog; the cursor is
  complete immediately (``kind == "view"``).
* ``WITH RECURSIVE``         → one-shot fixpoint over the current stored
  tables via the batch evaluator (``kind == "batch"``).
* ``SELECT`` over stored tables only → one-shot batch evaluation
  (``kind == "batch"``; rows are materialized at call time).
* ``SELECT`` scanning a **sensor-hosted** source (on a session with
  sensor capability — ``connect(network=...)`` or an injected
  ``sensor_engine``) → the **federated** backend (``kind ==
  "federated"``): the message-cost optimizer partitions the plan,
  pushes filters / periodic collection / key-covering aggregation
  in-network, and compiles the residual onto the stream backend with
  the fragments' outputs arriving as RemoteSource feeds.
* any other ``SELECT``       → continuous query on the session's stream
  backend (``kind == "stream"``): one
  :class:`~repro.stream.engine.StreamEngine`, or — with
  ``connect(shards=N)`` — a partition-parallel
  :class:`~repro.stream.sharded.ShardedStreamEngine` pool behind the
  identical surface. The federated backend's residual runs on this
  same delegate, so federation composes with sharding.
* ``placement=...`` (or ``engine="distributed"``) → operators placed
  across the LAN-simulated :class:`DistributedStreamEngine`
  (``kind == "distributed"``; requires ``connect(nodes=[...])``).

Each route is served by an :class:`~repro.api.backends.ExecutionBackend`
peer (see :mod:`repro.api.backends`); ``Session._route`` only picks the
backend name, and the backend compiles-and-runs the plan.

``engine="stream" | "batch" | "distributed" | "federated"`` overrides
the automatic choice. Every failure surfaces as :class:`~repro.errors.QueryError`
(compile-time, with source position when the parser provides one),
:class:`~repro.errors.SourceError` (attach/detach/ingest) or
:class:`~repro.errors.SessionClosedError` — all
:class:`~repro.errors.AspenError` subclasses.
"""

from __future__ import annotations

import warnings
import weakref
from contextlib import contextmanager
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis import (
    PlanAnalysisWarning,
    analyze_plan,
    explain_diagnostics,
)
from repro.catalog import Catalog, SourceKind
from repro.data.tuples import Row
from repro.errors import (
    AnalysisError,
    AspenError,
    CatalogError,
    ExecutionError,
    OptimizerError,
    ParseError,
    PlanError,
    QueryError,
    SchemaError,
    SessionClosedError,
    SourceError,
)
from repro.plan import PlanBuilder
from repro.plan.builder import RecursivePlan
from repro.plan.logical import LogicalOp, Output, RemoteSource, Scan
from repro.runtime import Simulator
from repro.sql.analyzer import Analyzer
from repro.sql.ast import CreateView, RecursiveQuery, SelectQuery
from repro.sql.expressions import collect_parameters
from repro.sql.lexer import tokenize
from repro.sql.normalize import normalize_sql
from repro.sql.parser import parse
from repro.stream.batch import evaluate, fixpoint
from repro.stream.engine import StreamEngine
from repro.stream.multiplex import CachedStatement, PlanCache
from repro.wrappers.base import Punctuator

from repro.api.cursor import Cursor, PreparedStatement


def connect(
    *,
    catalog: Catalog | None = None,
    simulator: Simulator | None = None,
    engine: StreamEngine | None = None,
    sensor_engine: Any | None = None,
    network: Any | None = None,
    nodes: Sequence[str] | None = None,
    deliver: Any | None = None,
    seed: int = 0,
    shards: int = 1,
    workers: str = "inline",
    checkpoint_interval: float | None = None,
    share_plans: bool = True,
    plan_cache_size: int = 256,
    analysis: str = "warn",
) -> "Session":
    """Open a :class:`Session`.

    With no arguments a fresh catalog, simulator and stream engine are
    created. Existing components can be injected (the SmartCIS app binds
    a session over the engines it already assembled). ``nodes`` enables
    distributed routing; ``network`` (a ``SensorNetwork``) enables
    :class:`~repro.api.SensorSource` attachments.

    ``shards=N`` (N > 1) replaces the single stream engine with a
    partition-parallel pool of N engines: partition-safe continuous
    queries run one replica per shard with merged results, rows are
    hash-partitioned by each source's declared key
    (``StreamSource(partition_by=...)``; round-robin otherwise), and
    everything else transparently falls back to one designated engine.
    The Session surface — ``query``/``push``/``push_many``/``Cursor`` —
    is unchanged.

    ``workers="process"`` (with ``shards=N``, N > 1) runs each shard in
    its own OS process for true multi-core ingest: partition-safe
    queries ship as SQL text to worker processes that recompile them
    locally, rows travel as value-tuple batches over bounded queues,
    and the parent keeps the merge coordinator — results are
    byte-identical to the in-process pool. When process workers cannot
    run (no usable multiprocessing start method, or ``shards=1``) the
    session degrades to the in-process pool and records an ``RA313``
    info diagnostic, surfaced through ``session.explain``. The default
    ``workers="inline"`` is the in-process pool.

    ``checkpoint_interval=W`` (watermark units) attaches a
    :class:`~repro.stream.checkpoint.CheckpointCoordinator` to the
    stream engine (or sharded pool): operator state is snapshotted at
    punctuation-aligned barriers every ``W`` of watermark progress, and
    a failed engine — ``repro.runtime.faults.kill_shard``, or a real
    crash in an embedding — is restored from the latest barrier plus a
    replay of the suffix of ingested elements since it. The coordinator
    is exposed as ``session.checkpointer``.

    ``share_plans`` (default True) turns on standing-query multiplexing
    on stream engines this session *builds*: continuous queries with a
    structurally identical plan — or a common scan/filter/aggregate
    prefix — execute one shared operator chain fanned out to per-query
    sinks (see :mod:`repro.stream.multiplex`), and repeated SQL text is
    served from a normalized-text plan cache of ``plan_cache_size``
    entries that skips lex/parse/analyze/build on a hit.
    ``share_plans=False`` restores fully private per-query pipelines
    (the cache stays on — it never changes semantics, only compile
    cost). An *injected* engine keeps its own ``share_plans`` setting.

    ``analysis`` controls admission-time static analysis
    (:func:`repro.analysis.analyze_plan`: typed-plan inference,
    unbounded-state detection, progress soundness). ``"warn"`` (the
    default) records the verdict — available via ``session.explain``
    and the plan cache — and surfaces error-severity findings as
    :class:`~repro.analysis.PlanAnalysisWarning` Python warnings;
    ``"strict"`` turns them into :class:`~repro.errors.QueryError`
    before the engine sees a row; ``"off"`` skips analysis entirely.
    The verdict is cached with the compiled plan, so warm admissions
    pay nothing (``session.stats()["analysis"]`` counts runs vs hits).
    """
    return Session(
        catalog=catalog,
        simulator=simulator,
        engine=engine,
        sensor_engine=sensor_engine,
        network=network,
        nodes=nodes,
        deliver=deliver,
        seed=seed,
        shards=shards,
        workers=workers,
        checkpoint_interval=checkpoint_interval,
        share_plans=share_plans,
        plan_cache_size=plan_cache_size,
        analysis=analysis,
    )


class Session:
    """A connection-like façade over the ASPEN engines. See :func:`connect`."""

    def __init__(
        self,
        *,
        catalog: Catalog | None = None,
        simulator: Simulator | None = None,
        engine: StreamEngine | None = None,
        sensor_engine: Any | None = None,
        network: Any | None = None,
        nodes: Sequence[str] | None = None,
        deliver: Any | None = None,
        seed: int = 0,
        shards: int = 1,
        workers: str = "inline",
        checkpoint_interval: float | None = None,
        share_plans: bool = True,
        plan_cache_size: int = 256,
        analysis: str = "warn",
    ):
        from repro.api.backends import (
            BatchBackend,
            DistributedBackend,
            FederatedBackend,
            ProcessShardBackend,
            ShardedStreamBackend,
            StreamBackend,
        )

        self.catalog = catalog if catalog is not None else Catalog()
        self.simulator = simulator if simulator is not None else Simulator(seed)
        self._deliver = deliver
        self._network = network
        self._sensor_engine = sensor_engine
        self._nodes = list(nodes) if nodes else []
        self._cursors: list[Cursor] = []  # open stream cursors
        self._distributed_cursors: list[Cursor] = []  # receive push forwards
        self._attachments: dict[str, Any] = {}  # name.lower() -> adapter
        self._attach_order: list[str] = []
        self._punctuators: list[Punctuator] = []
        self._statements: "weakref.WeakSet" = weakref.WeakSet()
        self._closed = False
        self._plan_cache = PlanCache(capacity=plan_cache_size)
        if analysis not in ("off", "warn", "strict"):
            raise QueryError(
                f"unknown analysis mode {analysis!r}; "
                "expected 'off', 'warn' or 'strict'"
            )
        self._analysis_mode = analysis
        #: Static-analysis observability: fresh runs, verdicts served
        #: from the plan cache, and compiles skipped under analysis="off".
        self._analysis_counters = {"runs": 0, "hits": 0, "skipped": 0}
        if workers not in ("inline", "process"):
            raise QueryError(
                f"unknown workers mode {workers!r}; expected 'inline' or 'process'"
            )
        #: Session-level degradation diagnostics (e.g. RA313: process
        #: workers requested but unavailable), appended to every
        #: ``session.explain`` report.
        self._degradations: list[Any] = []
        if shards > 1:
            if engine is not None:
                raise QueryError(
                    "connect(shards=...) builds its own engine pool; "
                    "an injected engine cannot be sharded"
                )
            stream_backend: Any = None
            if workers == "process":
                from repro.analysis.diagnostics import INFO, diag
                from repro.stream.procshard import usable_start_method

                method = usable_start_method()
                if method is None:
                    self._degradations.append(
                        diag(
                            "RA313",
                            INFO,
                            "workers='process' requested but no usable "
                            "multiprocessing start method exists on this "
                            "platform; running the in-process shard pool",
                            hint="results are identical; only throughput differs",
                        )
                    )
                else:
                    try:
                        stream_backend = ProcessShardBackend(
                            self, shards, share_plans, method
                        )
                    except OSError as exc:
                        self._degradations.append(
                            diag(
                                "RA313",
                                INFO,
                                "workers='process' could not launch worker "
                                f"processes ({exc}); running the in-process "
                                "shard pool",
                                hint="results are identical; only throughput differs",
                            )
                        )
            if stream_backend is None:
                stream_backend = ShardedStreamBackend(self, shards, share_plans)
        else:
            if workers == "process":
                from repro.analysis.diagnostics import INFO, diag

                self._degradations.append(
                    diag(
                        "RA313",
                        INFO,
                        "workers='process' needs shards > 1; a single shard "
                        "runs in-process",
                        hint="connect(shards=N, workers='process') with N > 1",
                    )
                )
            stream_backend = StreamBackend(self, engine, share_plans)
        #: Routing key -> ExecutionBackend peer. The "stream" slot holds
        #: either the single-engine or the sharded backend; the
        #: federated backend delegates its residual plans to that same
        #: slot, and everything downstream of _route is backend-agnostic.
        self._backends: dict[str, Any] = {
            "stream": stream_backend,
            "batch": BatchBackend(self),
            "distributed": DistributedBackend(self, self._nodes),
            "federated": FederatedBackend(self, stream_backend),
        }
        self.engine = stream_backend.engine
        #: Recovery coordinator (None unless connect(checkpoint_interval=...)).
        self.checkpointer = None
        if checkpoint_interval is not None:
            from repro.stream.checkpoint import CheckpointCoordinator

            self.checkpointer = CheckpointCoordinator(
                self.engine, interval=checkpoint_interval
            )
        self.builder = PlanBuilder(self.catalog)
        self.analyzer = Analyzer(self.catalog)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the session: invalidate prepared statements, stop every
        open cursor, detach every source (stopping its wrapper / sensor
        collection), stop owned punctuators, and close every execution
        backend. Idempotent."""
        if self._closed:
            return
        self._closed = True
        # Invalidate first: an in-flight PreparedStatement must raise
        # SessionClosedError on its next execute() rather than compile
        # and run against engines this close() is about to stop.
        for statement in list(self._statements):
            statement._invalidate()
        for cursor in list(self._cursors) + list(self._distributed_cursors):
            cursor.close()
        for name in reversed(self._attach_order):
            adapter = self._attachments.pop(name, None)
            if adapter is None:
                continue
            try:
                adapter.detach(self)
            except Exception:
                # Shutdown must reach every adapter and the punctuators;
                # one failing detach (of any exception type) must not
                # leave the rest of the runtime running.
                pass
        self._attach_order.clear()
        for punctuator in self._punctuators:
            punctuator.stop()
        self._punctuators.clear()
        for backend in self._backends.values():
            backend.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionClosedError("session is closed")

    # ------------------------------------------------------------------
    # Compilation (SQL text -> plan), with the QueryError funnel
    # ------------------------------------------------------------------
    @contextmanager
    def _compiling(self, sql: str):
        """Translate front-end failures into QueryError with position."""
        try:
            yield
        except ParseError as exc:
            raise QueryError(str(exc), line=exc.line, column=exc.column, sql=sql) from exc
        except (AnalysisError, CatalogError, PlanError, OptimizerError) as exc:
            raise QueryError(str(exc), sql=sql) from exc

    def _parse(self, sql: str):
        with self._compiling(sql):
            return parse(sql)

    def _compile_statement(
        self,
        sql: str,
        *,
        placement: Any | None = None,
        engine: str | None = None,
    ) -> CachedStatement:
        """SQL text -> :class:`CachedStatement`, memoized in the plan cache.

        The one front-end funnel behind both ``query()`` and
        ``prepare()``: normalize the text, and on a cache hit skip
        lexing, parsing, analysis, plan construction *and* routing —
        the entry carries the statement, analyzed form, plan and route.
        Entries are keyed on the normalized text and stamped with the
        catalog's schema epoch, so CREATE VIEW / attach / detach /
        drop_table (each bumps the epoch) invalidate every plan
        compiled against the old catalog.

        Not every call is cacheable: ``placement``/``engine`` overrides
        bake a routing decision into the entry that the default path
        must not inherit, so overridden calls compile fresh and are
        never stored. CREATE VIEW is returned uncompiled (``plan=None``,
        ``route="view"``) and never cached — running it mutates the
        catalog, and the two callers reject or handle it differently.
        """
        cacheable = placement is None and engine is None
        if cacheable:
            with self._compiling(sql):
                key = normalize_sql(sql)
            entry = self._plan_cache.lookup(key, self.catalog.schema_epoch)
            if entry is not None:
                self._analyze_entry(entry, sql, cached=True)
                return entry
        statement = self._parse(sql)
        parameters = tuple(sorted(_statement_parameter_names(statement)))
        if isinstance(statement, CreateView):
            return CachedStatement(
                statement, None, None, "view", parameters, self.catalog.schema_epoch
            )
        with self._compiling(sql):
            if isinstance(statement, RecursiveQuery):
                if engine not in (None, "batch") or placement is not None:
                    raise QueryError(
                        "WITH RECURSIVE always evaluates on the batch engine; "
                        f"engine={engine!r}, placement={placement!r} cannot apply",
                        sql=sql,
                    )
                analyzed: Any = self.analyzer.analyze_recursive(statement)
                plan: Any = self.builder.build_recursive(analyzed)
                route = "batch"
            elif isinstance(statement, SelectQuery):
                analyzed = self.analyzer.analyze_select(statement)
                plan = self.builder.build_select(analyzed)
                route = self._route(plan, placement, engine, sql)
            else:
                raise QueryError(
                    f"unsupported statement {type(statement).__name__}", sql=sql
                )
        entry = CachedStatement(
            statement, analyzed, plan, route, parameters, self.catalog.schema_epoch
        )
        if cacheable:
            self._plan_cache.store(key, entry)
        self._analyze_entry(entry, sql, cached=False)
        return entry

    def _analyze_entry(self, entry: CachedStatement, sql: str, *, cached: bool) -> None:
        """Run (or reuse) static analysis for one compiled statement.

        The verdict lives on the cache entry, so a warm admission costs
        one attribute read. Enforcement runs on every admission — a
        strict session must reject an unbounded plan whether or not the
        compile was served from cache. Stored before enforcement: the
        compile itself is valid, and the cached verdict is what makes
        the *next* strict rejection free.
        """
        if self._analysis_mode == "off":
            self._analysis_counters["skipped"] += 1
            return
        report = entry.analysis
        if report is None:
            if entry.plan is None:
                return  # CREATE VIEW: nothing to analyze until queried
            report = analyze_plan(entry.plan)
            entry.analysis = report
            self._analysis_counters["runs"] += 1
        elif cached:
            self._analysis_counters["hits"] += 1
        if report.ok:
            return
        rendered = "; ".join(d.render() for d in report.errors)
        if self._analysis_mode == "strict":
            raise QueryError(f"plan analysis failed: {rendered}", sql=sql)
        warnings.warn(rendered, PlanAnalysisWarning, stacklevel=4)

    def plan(self, sql: str) -> LogicalOp | RecursivePlan:
        """Compile SQL text to a logical plan without executing it.

        The EXPLAIN building block: the federated optimizer (or any other
        planner layered on top) consumes the returned plan.
        """
        self._ensure_open()
        with self._compiling(sql):
            return self.builder.build_sql(sql)

    def explain(self, sql: str):
        """Partition a SELECT through the federated optimizer without
        executing it; returns the costed
        :class:`~repro.core.federated.FederatedPlan` (fragments, stream
        residual, every alternative considered), with ``diagnostics``
        populated: the plan's static-analysis report plus the unified
        eligibility explanations — why the plan would fall back to one
        shard engine (``RA3xx``, sharded sessions), decline subplan
        sharing (``RA4xx``), or ship sensor samples raw (``RA5xx``).

        Works on any session — plans without sensor-hosted scans come
        back whole as the stream residual with no fragments. Every
        failure funnels through :class:`~repro.errors.QueryError`:
        unparsable text carries the source position, and non-SELECT
        statements are rejected here — with the statement's source
        position, like ``query``/``prepare`` — rather than deep in the
        optimizer.
        """
        self._ensure_open()
        statement = self._parse(sql)
        if not isinstance(statement, SelectQuery):
            # The parse succeeded, so the statement's first token is
            # where the wrong statement kind begins.
            first = tokenize(sql)[0]
            raise QueryError(
                f"explain requires a SELECT statement, got "
                f"{type(statement).__name__}",
                line=first.line,
                column=first.column,
                sql=sql,
            )
        with self._compiling(sql):
            plan = self.builder.build_select(self.analyzer.analyze_select(statement))
            federated = self._backends["federated"].partition(plan)
        report = analyze_plan(plan)
        shard_keys = (
            dict(getattr(self.engine, "_keys", {})) if self.shards > 1 else None
        )
        federated.diagnostics = (
            list(report.diagnostics)
            + explain_diagnostics(plan, federated, shard_keys=shard_keys)
            + list(self._degradations)
        )
        return federated

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        sql: str,
        *,
        params: Mapping[str, Any] | None = None,
        placement: Any | None = None,
        engine: str | None = None,
    ) -> Cursor:
        """Compile and run one statement of Stream SQL text.

        ``params`` binds ``:name`` placeholders for this one execution
        (equivalent to ``prepare(sql).execute(**params)``). ``placement``
        routes a SELECT to the distributed engine (pass a
        :class:`~repro.stream.distributed.Placement` or ``"auto"``);
        ``engine`` overrides routing with ``"stream"``, ``"batch"``,
        ``"distributed"`` or ``"federated"``.
        """
        self._ensure_open()
        if params:
            return self.prepare(sql, placement=placement, engine=engine).execute(**params)
        entry = self._compile_statement(sql, placement=placement, engine=engine)
        statement = entry.statement
        if entry.parameters:
            # Reject at compile time: an unbound Parameter reaching a
            # running pipeline would raise mid-ingestion, poisoning
            # every other query on the same source.
            raise QueryError(
                f"statement has unbound parameters: {', '.join(entry.parameters)}; "
                "pass params=... or use prepare()",
                sql=sql,
            )
        if isinstance(statement, CreateView):
            if engine is not None or placement is not None:
                raise QueryError(
                    "CREATE VIEW only registers a definition; "
                    f"engine={engine!r}, placement={placement!r} cannot apply",
                    sql=sql,
                )
            with self._compiling(sql):
                analyzed = self.analyzer.analyze_create_view(statement)
            self.catalog.register_view(statement.name, statement.query)
            return Cursor._view(self, sql, statement.name, analyzed.output_schema)
        if isinstance(statement, RecursiveQuery):
            return Cursor._materialized(
                self, self._evaluate(entry.plan), entry.plan.schema, sql
            )
        return self._start(entry.plan, entry.route, placement, sql)

    def prepare(
        self,
        sql: str,
        *,
        placement: Any | None = None,
        engine: str | None = None,
    ) -> PreparedStatement:
        """Compile once; execute many times with named parameters.

        ``session.prepare("select ... where t.temp > :limit").execute(limit=30)``
        """
        self._ensure_open()
        statement = PreparedStatement(self, sql, placement=placement, engine=engine)
        # Tracked weakly so close() can invalidate in-flight statements
        # without keeping every statement ever prepared alive.
        self._statements.add(statement)
        return statement

    # -- routing -------------------------------------------------------
    _ROUTES = ("stream", "batch", "distributed", "federated")

    def _route(
        self,
        plan: LogicalOp,
        placement: Any | None,
        engine: str | None,
        sql: str,
    ) -> str:
        if engine is not None:
            if engine not in self._ROUTES:
                raise QueryError(
                    f"unknown engine {engine!r}; expected one of "
                    f"{', '.join(repr(r) for r in self._ROUTES)}",
                    sql=sql,
                )
            if placement is not None and engine != "distributed":
                raise QueryError(
                    f"placement=... requires the distributed engine, not engine={engine!r}",
                    sql=sql,
                )
            route = engine
        elif placement is not None:
            route = "distributed"
        else:
            # OUTPUT TO DISPLAY needs the stream engine's deliver hook;
            # the batch evaluator has no display path, so a table-only
            # SELECT with an OUTPUT clause still runs continuous.
            if self._has_output(plan) or not self._is_table_only(plan):
                # Sensor-hosted scans go through the federated
                # optimizer when this session can actually deploy
                # in-network fragments; without sensor capability the
                # stream engine serves them as plain feeds, as before.
                if self._sensor_capable and self._has_sensor_scan(plan):
                    return "federated"
                return "stream"
            return "batch"
        if route == "batch":
            if self._has_output(plan):
                raise QueryError(
                    "OUTPUT TO DISPLAY requires the stream engine "
                    "(the batch evaluator has no display delivery)",
                    sql=sql,
                )
            if not self._is_table_only(plan):
                raise QueryError(
                    "engine='batch' requires every scanned source to be a stored table",
                    sql=sql,
                )
        return route

    @property
    def _sensor_capable(self) -> bool:
        """True when this session can deploy in-network fragments."""
        return self._sensor_engine is not None or self._network is not None

    @staticmethod
    def _has_sensor_scan(plan: LogicalOp) -> bool:
        from repro.catalog import EngineLocation

        return any(
            isinstance(node, Scan) and node.entry.location is EngineLocation.SENSOR
            for node in plan.walk()
        )

    @staticmethod
    def _has_output(plan: LogicalOp) -> bool:
        return any(isinstance(node, Output) for node in plan.walk())

    @staticmethod
    def _is_table_only(plan: LogicalOp) -> bool:
        has_scan = False
        for node in plan.walk():
            if isinstance(node, RemoteSource):
                return False
            if isinstance(node, Scan):
                has_scan = True
                if node.entry.kind is not SourceKind.TABLE:
                    return False
        return has_scan

    # -- execution -----------------------------------------------------
    def backend(self, route: str) -> Any:
        """The :class:`~repro.api.backends.ExecutionBackend` serving a
        routing key ("stream", "batch", "distributed" or "federated")."""
        try:
            return self._backends[route]
        except KeyError:
            raise QueryError(
                f"unknown engine {route!r}; expected one of "
                f"{', '.join(repr(r) for r in self._ROUTES)}"
            ) from None

    def _start(
        self, plan: LogicalOp, route: str, placement: Any | None, sql: str
    ) -> Cursor:
        return self.backend(route).compile_and_run(plan, sql, placement=placement)

    def _evaluate(self, plan: LogicalOp | RecursivePlan) -> list[Row]:
        """One-shot batch evaluation over the current stored tables."""
        tables = self._scanned_tables(plan)
        if isinstance(plan, RecursivePlan):
            closure = fixpoint(plan.recursive, tables)
            tables[plan.recursive.name] = closure
            return evaluate(plan.main, tables)
        return evaluate(plan, tables)

    def _scanned_tables(self, plan: LogicalOp | RecursivePlan) -> dict[str, list[Row]]:
        """Current rows of just the stored tables ``plan`` scans.

        Copying only the scanned tables keeps repeated prepared-batch
        executions O(rows actually read), not O(all stored rows).
        Non-table scans are omitted, so the evaluator still raises its
        usual "no table provided" error for them.
        """
        if isinstance(plan, RecursivePlan):
            nodes = list(plan.recursive.walk()) + list(plan.main.walk())
        else:
            nodes = list(plan.walk())
        names = {
            node.entry.name
            for node in nodes
            if isinstance(node, Scan) and node.entry.kind is SourceKind.TABLE
        }
        return {name: self.engine.table_rows(name) for name in names}

    @property
    def distributed(self):
        """The session's DistributedStreamEngine (built on first use)."""
        self._ensure_open()
        return self._backends["distributed"].engine

    @property
    def shards(self) -> int:
        """How many stream shards serve this session (1 = unsharded)."""
        return getattr(self._backends["stream"], "shards", 1)

    def stats(self) -> dict:
        """Multiplexing observability counters.

        ``{"plan_cache": {...}, "sharing": {...}, "analysis": {...},
        "schema_epoch": n}`` — the plan cache's
        size/hits/misses/evictions/invalidations, the stream engine's
        shared-subplan counters (live chains, total fan-out, chains
        created/attached/detached/torn down, declined admissions; summed
        across every shard and the fallback engine under
        ``connect(shards=N)``), the static-analysis counters (``runs``:
        fresh analyses on cache-miss compiles, ``hits``: cache hits that
        reused the stored verdict, ``skipped``: compiles under
        ``analysis="off"``, plus the session's ``mode``), and the
        catalog schema epoch the cache keys against.

        Under ``connect(workers="process")`` an extra ``"workers"``
        entry reports the process-transport counters: worker count,
        queue-depth high-water mark, batches flushed by size / timeout /
        barrier, rows and batches shipped, and worker restarts.
        """
        self._ensure_open()
        out = {
            "plan_cache": self._plan_cache.stats(),
            "sharing": self.engine.sharing_stats(),
            "analysis": dict(self._analysis_counters, mode=self._analysis_mode),
            "schema_epoch": self.catalog.schema_epoch,
        }
        worker_stats = getattr(self.engine, "worker_stats", None)
        if worker_stats is not None:
            out["workers"] = worker_stats()
        return out

    def _forget_cursor(self, cursor: Cursor) -> None:
        for registry in (self._cursors, self._distributed_cursors):
            try:
                registry.remove(cursor)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(
        self,
        source: str,
        row: Row | Mapping[str, Any],
        timestamp: float | None = None,
    ) -> None:
        """Push one element of ``source`` into every query reading it —
        stream-engine queries and open distributed cursors alike."""
        if self._closed:
            raise SessionClosedError("session is closed")
        ts = self.simulator.now if timestamp is None else timestamp
        try:
            self.engine.push(source, row, ts)
        except (CatalogError, SchemaError, ExecutionError) as exc:
            raise SourceError(str(exc)) from exc
        if self._distributed_cursors:
            for cursor in self._distributed_cursors:
                cursor._query.push(source, row, ts)

    def push_many(
        self,
        source: str,
        rows: Sequence[Row | Mapping[str, Any]],
        timestamps: float | Sequence[float] | None = None,
    ) -> int:
        """Batched ingestion (see :meth:`StreamEngine.push_many`).

        The batch reaches the engine's vectorized ``push_batch`` path:
        each query's operator pipeline traverses the whole batch with
        one dispatch per operator instead of one per element. Like
        :meth:`push`, ``timestamps`` defaults to the simulator's current
        time — switching between the two never changes stamps.
        """
        self._ensure_open()
        if timestamps is None:
            timestamps = self.simulator.now
        # Materialize up front: generators would otherwise be consumed
        # by the engine before the distributed forwarding below (and a
        # generator of rows has no len()). Lists pass through uncopied.
        if not isinstance(rows, list):
            rows = list(rows)
        if not isinstance(timestamps, (int, float, list)):
            timestamps = list(timestamps)
        try:
            count = self.engine.push_many(source, rows, timestamps)
        except (CatalogError, SchemaError, ExecutionError) as exc:
            raise SourceError(str(exc)) from exc
        if self._distributed_cursors:
            stamps = (
                [float(timestamps)] * len(rows)
                if isinstance(timestamps, (int, float))
                else list(timestamps)
            )
            for cursor in self._distributed_cursors:
                for row, stamp in zip(rows, stamps):
                    cursor._query.push(source, row, stamp)
        return count

    def punctuate(self, watermark: float, sources: list[str] | None = None) -> None:
        """Advance watermarks on stream-engine queries and distributed
        cursors (windows close, reports fire)."""
        self._ensure_open()
        self.engine.punctuate(watermark, sources)
        for cursor in self._distributed_cursors:
            cursor._query.punctuate(watermark, sources)

    def load(self, name: str, rows: Iterable[Row | Mapping[str, Any]]) -> int:
        """Load rows into a registered stored table (and update the
        catalog's cardinality statistics)."""
        from repro.wrappers.database import load_table

        self._ensure_open()
        try:
            return load_table(self.engine, self.catalog, name, list(rows))
        except (CatalogError, ExecutionError) as exc:
            raise SourceError(str(exc)) from exc

    def table_rows(self, name: str) -> list[Row]:
        """Current contents of a stored table."""
        self._ensure_open()
        return self.engine.table_rows(name)

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def attach(self, source: Any) -> Any:
        """Attach one source behind the :class:`~repro.api.SourceAdapter`
        protocol: catalog registration, engine routing and wrapper /
        collection start happen in this one call.

        Accepts a SourceAdapter, or a bare
        :class:`~repro.wrappers.base.Wrapper` /
        :class:`~repro.sensor.SensorRelation` which is wrapped in the
        matching adapter. Returns the adapter (keyed by ``name`` for
        :meth:`detach`)."""
        self._ensure_open()
        adapter = self._coerce_adapter(source)
        key = adapter.name.lower()
        if key in self._attachments:
            raise SourceError(f"source {adapter.name!r} is already attached")
        try:
            adapter.attach(self)
        except BaseException as exc:
            # Roll back whatever the adapter managed to register before
            # failing — a half-attached source would be unreachable by
            # both retry and close() otherwise.
            try:
                adapter.detach(self)
            except Exception:
                pass
            if isinstance(exc, SourceError) or not isinstance(exc, AspenError):
                raise  # non-Aspen exceptions are bugs; surface them raw
            raise SourceError(f"attaching {adapter.name!r} failed: {exc}") from exc
        self._attachments[key] = adapter
        self._attach_order.append(key)
        return adapter

    def detach(self, name: str) -> None:
        """Symmetric inverse of :meth:`attach`: stops the source's
        runtime (wrapper poll loop, sensor collection), drops loaded
        rows and removes catalog registrations the attach created."""
        self._ensure_open()
        key = name.lower()
        adapter = self._attachments.get(key)
        if adapter is None:
            raise SourceError(f"no attached source named {name!r}")
        try:
            adapter.detach(self)
        except SourceError:
            raise
        except AspenError as exc:
            raise SourceError(f"detaching {name!r} failed: {exc}") from exc
        # Deregister only after a successful detach: a failing detach
        # leaves the source attached (and its runtime tracked) so close()
        # or a retry can still stop it.
        del self._attachments[key]
        self._attach_order.remove(key)

    def attached(self) -> list[str]:
        """Names of currently attached sources, in attach order."""
        return [self._attachments[key].name for key in self._attach_order]

    def _coerce_adapter(self, source: Any):
        from repro.api.sources import SensorSource, WrapperSource, _is_adapter
        from repro.sensor import SensorRelation
        from repro.wrappers.base import Wrapper

        if _is_adapter(source):
            return source
        if isinstance(source, Wrapper):
            return WrapperSource(wrapper=source)
        if isinstance(source, SensorRelation):
            return SensorSource(source)
        raise SourceError(
            f"cannot attach {type(source).__name__}; expected a SourceAdapter, "
            "Wrapper or SensorRelation"
        )

    def add_punctuator(self, period: float = 1.0, slack: float = 0.0) -> Punctuator:
        """Start a periodic watermark emitter owned by this session
        (stopped on :meth:`close`)."""
        self._ensure_open()
        punctuator = Punctuator(self.engine, self.simulator, period=period, slack=slack)
        punctuator.start()
        self._punctuators.append(punctuator)
        return punctuator

    # -- sensor integration --------------------------------------------
    @property
    def sensor_engine(self):
        """The session's SensorEngine (built on first use; requires
        ``connect(network=...)`` unless one was injected)."""
        if self._sensor_engine is None:
            if self._network is None:
                raise SourceError(
                    "sensor sources require connect(network=...) or an injected "
                    "sensor_engine"
                )
            from repro.sensor import SensorEngine

            self._sensor_engine = SensorEngine(
                self._network, on_result=self._on_sensor_result
            )
        return self._sensor_engine

    def _on_sensor_result(self, name: str, values: dict[str, Any], time: float) -> None:
        if self.catalog.has_source(name):
            self.engine.push(name, values, time)
        else:
            self.engine.push_remote(name, values, time)


def _statement_parameter_names(statement) -> set[str]:
    """Names of every ``:parameter`` occurring in a parsed statement."""
    if isinstance(statement, SelectQuery):
        queries = [statement]
    elif isinstance(statement, CreateView):
        queries = [statement.query]
    elif isinstance(statement, RecursiveQuery):
        queries = [statement.base, statement.step, statement.main]
    else:
        return set()
    exprs = [expr for query in queries for expr in query.expressions()]
    return set(collect_parameters(exprs))
