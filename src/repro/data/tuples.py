"""Row values flowing through ASPEN plans.

A :class:`Row` pairs a :class:`~repro.data.schema.Schema` with a tuple of
values. Rows are immutable and hashable (required by the provenance
machinery of the recursive stream-view maintainer, which counts
derivations per distinct row).
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable, Iterator, Mapping

from repro.data.schema import Schema
from repro.data.types import conforms
from repro.errors import SchemaError, TypeMismatchError

#: Arbitrary odd constants keeping distinct value kinds apart in
#: :func:`stable_hash` (None vs 0 vs "" must not collide trivially).
_NONE_HASH = 0x9E3779B1
_SEQ_SEED = 0x85EBCA77


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent hash for partition routing.

    Python's builtin ``hash`` is salted per process for ``str`` (and
    anything built on it), so two engine processes — or two runs of the
    same test — would disagree about which shard owns ``'lab1'``. This
    hash is stable across processes and runs:

    * numbers use the builtin hash (CPython does not salt them, and
      ``hash(1) == hash(1.0)`` keeps int/float join keys co-partitioned);
    * strings/bytes hash their UTF-8 bytes with CRC-32;
    * tuples (and :class:`Row` values) mix element hashes order-sensitively;
    * anything else falls back to the CRC-32 of its ``repr``.

    The result is non-negative, so ``stable_hash(v) % shards`` is a
    valid shard index.
    """
    if type(value) is str:  # the overwhelmingly common partition key kind
        return zlib.crc32(value.encode("utf-8"))
    if value is None:
        return _NONE_HASH
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, (int, float)):  # bool included (int subclass)
        return hash(value) & 0x7FFFFFFFFFFFFFFF
    if isinstance(value, tuple):
        acc = _SEQ_SEED
        for item in value:
            acc = (acc * 1000003 + stable_hash(item)) & 0x7FFFFFFFFFFFFFFF
        return acc
    if isinstance(value, Row):
        return stable_hash(value.values)
    return zlib.crc32(repr(value).encode("utf-8"))


class Row:
    """An immutable, schema-typed tuple of values.

    Values are validated against the schema's types on construction so
    that malformed data from a wrapper fails at the boundary, not deep
    inside an operator.
    """

    __slots__ = ("_schema", "_values", "_hash")

    def __init__(self, schema: Schema, values: Iterable[Any], *, validate: bool = True):
        self._schema = schema
        self._values = tuple(values)
        if len(self._values) != len(schema):
            raise SchemaError(
                f"row has {len(self._values)} values but schema has {len(schema)} fields"
            )
        if validate:
            for field, value in zip(schema, self._values):
                if not conforms(value, field.dtype):
                    raise TypeMismatchError(
                        f"value {value!r} does not conform to {field.name}:{field.dtype.value}"
                    )
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def raw(cls, schema: Schema, values: tuple) -> "Row":
        """Unchecked hot-path constructor.

        ``values`` must already be a tuple of the schema's arity; no
        copy, arity check or type validation happens. Operators use this
        for rows they derive from already-validated inputs — malformed
        external data must still enter through ``Row(...)`` or
        :meth:`from_mapping`.
        """
        row = object.__new__(cls)
        row._schema = schema
        row._values = values
        row._hash = None
        return row

    @classmethod
    def from_mapping(cls, schema: Schema, mapping: Mapping[str, Any]) -> "Row":
        """Build a row by looking up each schema field in ``mapping``.

        Field names are matched on their bare name first, then full name,
        so wrappers can supply plain column names for qualified schemas.
        """
        values = []
        for field in schema:
            if field.name in mapping:
                values.append(mapping[field.name])
            elif field.bare_name in mapping:
                values.append(mapping[field.bare_name])
            else:
                raise SchemaError(f"mapping is missing field {field.name!r}")
        return cls(schema, values)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.index_of(key)]

    def get(self, key: str, default: Any = None) -> Any:
        """Value for ``key`` or ``default`` if the field does not exist."""
        if self._schema.has(key):
            return self[key]
        return default

    def as_dict(self) -> dict[str, Any]:
        """A name→value dict (full field names)."""
        return dict(zip(self._schema.names, self._values))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def project(self, names: Iterable[str]) -> "Row":
        """Row restricted to ``names``, with a correspondingly projected schema."""
        names = list(names)
        schema = self._schema.project(names)
        return Row(schema, (self[name] for name in names), validate=False)

    def concat(self, other: "Row") -> "Row":
        """The join of two rows (schema and values concatenated)."""
        return Row.raw(self._schema.concat(other._schema), self._values + other._values)

    def with_schema(self, schema: Schema) -> "Row":
        """This row's values reinterpreted under an equally-long ``schema``."""
        values = self._values
        if len(values) != len(schema._fields):
            raise SchemaError(
                f"row has {len(values)} values but schema has {len(schema)} fields"
            )
        return Row.raw(schema, values)

    def replace(self, **updates: Any) -> "Row":
        """A copy of this row with the named fields replaced."""
        values = list(self._values)
        for name, value in updates.items():
            values[self._schema.index_of(name)] = value
        return Row(self._schema, values)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._schema.has(name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._values == other._values and self._schema == other._schema

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._schema, self._values))
        return self._hash

    def __repr__(self) -> str:
        pairs = ", ".join(f"{n}={v!r}" for n, v in zip(self._schema.names, self._values))
        return f"Row({pairs})"
