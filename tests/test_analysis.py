"""The static-analysis pass and diagnostics framework.

Every stable ``RA###`` code in :data:`repro.analysis.diagnostics.CODES`
is pinned by at least one test here: the typed-plan checks over
hand-built (constructor-bypassing) trees, the unbounded-state and
progress analyses over windowed plans, the partition-safety and
sharing-eligibility verdict codes, the federated explanation codes, and
the engine-invariant linter over synthetic source trees. The CLI
(``python -m repro.analysis``) is covered in both corpus and --self
modes.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
    analyze_plan,
    check_bounds,
    check_progress,
    check_types,
    diag,
    exchange_diagnostics,
    explain_diagnostics,
    federated_diagnostics,
    partition_diagnostic,
    sharing_diagnostic,
    typed_schemas,
)
from repro.analysis.linter import lint_engine
from repro.catalog import Catalog
from repro.data import DataType, Schema
from repro.data.windows import WindowSpec
from repro.plan import PlanBuilder
from repro.plan.logical import (
    Aggregate,
    AggregateItem,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Output,
    Project,
    ProjectItem,
    Recursive,
    RemoteSource,
    Scan,
    Select,
)
from repro.sql.ast import OrderItem
from repro.sql.expressions import AggregateCall, BinaryOp, ColumnRef, Literal
from repro.stream.multiplex import sharing_eligibility
from repro.stream.partition import partition_safe

READINGS = Schema.of(("room", DataType.STRING), ("temp", DataType.FLOAT))
MACHINES = Schema.of(("host", DataType.STRING), ("room", DataType.STRING))


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream("Readings", READINGS, rate=10.0)
    catalog.register_stream("Events", MACHINES, rate=5.0)
    catalog.register_table("Machines", MACHINES, cardinality=8)
    return catalog


def _scan(catalog, name, binding, window=None) -> Scan:
    return Scan(catalog.source(name), binding, window)


def _plan(sql: str):
    return PlanBuilder(_catalog()).build_sql(sql)


def _codes(diagnostics) -> list[str]:
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
# Framework plumbing
# ----------------------------------------------------------------------
class TestDiagnosticsFramework:
    def test_registry_is_closed(self):
        with pytest.raises(ValueError, match="unregistered"):
            diag("RA999", ERROR, "nope")
        with pytest.raises(ValueError, match="severity"):
            diag("RA001", "fatal", "nope")

    def test_render_carries_code_operator_and_hint(self):
        rendered = diag(
            "RA101", ERROR, "boom", operator="Join(x)", hint="add a window"
        ).render()
        assert rendered == "[RA101] error: boom at Join(x) (hint: add a window)"

    def test_report_partitions_by_severity(self):
        report = AnalysisReport.of(
            [
                diag("RA101", ERROR, "e"),
                diag("RA102", WARNING, "w"),
                diag("RA200", INFO, "i"),
            ]
        )
        assert not report.ok
        assert _codes(report.errors) == ["RA101"]
        assert _codes(report.warnings) == ["RA102"]
        assert _codes(report.infos) == ["RA200"]
        assert report.has_code("RA102") and not report.has_code("RA103")
        assert report["RA200"].severity == INFO
        with pytest.raises(KeyError):
            report["RA001"]
        assert "RA101" in report.render()

    def test_empty_report_is_ok(self):
        report = AnalysisReport.of([])
        assert report.ok and report.render() == "no diagnostics"

    def test_every_registered_code_has_a_title(self):
        assert all(title for title in CODES.values())
        assert all(code.startswith("RA") for code in CODES)


# ----------------------------------------------------------------------
# RA0xx: typed-plan inference
# ----------------------------------------------------------------------
class TestTypedPlans:
    def test_well_typed_query_produces_no_type_diagnostics(self):
        plan = _plan(
            "select r.room, avg(r.temp) as a from Readings r "
            "[range 30 seconds] group by r.room"
        )
        assert check_types(plan) == []

    def test_typed_schemas_covers_every_node(self):
        plan = _plan("select r.room from Readings r where r.temp > 1.0")
        schemas = typed_schemas(plan)
        assert set(schemas) == {node.plan_id for node in plan.walk()}
        assert schemas[plan.plan_id] is plan.schema

    def test_ra001_select_predicate_references_missing_column(self):
        catalog = _catalog()
        plan = Select(
            _scan(catalog, "Readings", "r"),
            BinaryOp(">", ColumnRef("r.nope"), Literal(1.0)),
        )
        diags = check_types(plan)
        assert _codes(diags) == ["RA001"]
        assert diags[0].severity == ERROR

    def test_ra002_select_predicate_not_boolean(self):
        catalog = _catalog()
        plan = Select(
            _scan(catalog, "Readings", "r"),
            BinaryOp("+", ColumnRef("r.temp"), Literal(1.0)),
        )
        assert _codes(check_types(plan)) == ["RA002"]

    def test_ra001_ra002_join_predicate(self):
        catalog = _catalog()
        missing = Join(
            _scan(catalog, "Readings", "r"),
            _scan(catalog, "Machines", "m"),
            BinaryOp("=", ColumnRef("r.ghost"), ColumnRef("m.room")),
        )
        assert _codes(check_types(missing)) == ["RA001"]
        non_bool = Join(
            _scan(catalog, "Readings", "r"),
            _scan(catalog, "Machines", "m"),
            BinaryOp("+", ColumnRef("r.temp"), Literal(2.0)),
        )
        assert _codes(check_types(non_bool)) == ["RA002"]

    def test_ra004_projection_invalidated_by_rewrite(self):
        # Project type-checks at construction; a rewrite that swaps the
        # child out from under it is exactly what the analysis catches.
        catalog = _catalog()
        project = Project(
            _scan(catalog, "Readings", "r"),
            [ProjectItem(BinaryOp("*", ColumnRef("r.temp"), Literal(2.0)), "t2")],
        )
        project.child = _scan(catalog, "Machines", "r")  # no r.temp
        assert _codes(check_types(project)) == ["RA004"]

    def test_ra004_group_key_invalidated_by_rewrite(self):
        catalog = _catalog()
        aggregate = Aggregate(
            _scan(catalog, "Readings", "r"),
            [ColumnRef("r.temp")],
            [AggregateItem(AggregateCall("COUNT"), "n")],
            key_names=["t"],
        )
        aggregate.child = _scan(catalog, "Machines", "r")
        assert _codes(check_types(aggregate)) == ["RA004"]

    def test_ra003_aggregate_argument_type_invalidated_by_rewrite(self):
        catalog = _catalog()
        aggregate = Aggregate(
            _scan(catalog, "Readings", "r"),
            [],
            [AggregateItem(AggregateCall("AVG", ColumnRef("r.temp")), "a")],
        )
        # Same column name, string type: AVG becomes undefined.
        swapped = Schema.of(("room", DataType.STRING), ("temp", DataType.STRING))
        replacement = Catalog()
        replacement.register_stream("Readings", swapped, rate=1.0)
        aggregate.child = _scan(replacement, "Readings", "r")
        diags = check_types(aggregate)
        assert _codes(diags) == ["RA003"]
        assert "AVG" in diags[0].message

    def test_ra006_order_by_unorderable_type(self):
        catalog = _catalog()
        plan = OrderBy(
            _scan(catalog, "Readings", "r"),
            [OrderItem(BinaryOp(">", ColumnRef("r.temp"), Literal(1.0)), True)],
        )
        assert _codes(check_types(plan)) == ["RA006"]

    def test_ra001_order_by_missing_column(self):
        catalog = _catalog()
        plan = OrderBy(
            _scan(catalog, "Readings", "r"),
            [OrderItem(ColumnRef("r.ghost"), True)],
        )
        assert _codes(check_types(plan)) == ["RA001"]

    def test_ra005_recursive_cte_type_drift(self):
        catalog = _catalog()
        base = Project(
            _scan(catalog, "Machines", "m"),
            [ProjectItem(ColumnRef("m.host"), "n")],
        )
        step = Project(
            _scan(catalog, "Machines", "m"),
            [ProjectItem(Literal(1), "n")],  # INT against a STRING CTE column
        )
        recursive = Recursive(
            "closure", Schema.of(("n", DataType.STRING)), base, step
        )
        diags = check_types(recursive)
        assert _codes(diags) == ["RA005"]
        assert "step" in diags[0].message


# ----------------------------------------------------------------------
# RA1xx: unbounded-state detection
# ----------------------------------------------------------------------
class TestUnboundedState:
    def test_windowed_plan_is_bounded(self):
        plan = _plan(
            "select r.room, count(*) as n from Readings r "
            "[range 10 seconds] group by r.room"
        )
        assert check_bounds(plan) == []

    def test_table_only_plan_is_bounded(self):
        plan = _plan("select distinct m.room from Machines m")
        assert check_bounds(plan) == []

    def test_ra101_unbounded_join_side(self):
        catalog = _catalog()
        plan = Join(
            _scan(catalog, "Readings", "r", WindowSpec.unbounded()),
            _scan(catalog, "Machines", "m"),
            BinaryOp("=", ColumnRef("r.room"), ColumnRef("m.room")),
        )
        diags = check_bounds(plan)
        assert _codes(diags) == ["RA101"]
        assert diags[0].severity == ERROR and "left" in diags[0].message

    def test_default_windowed_join_is_bounded(self):
        plan = _plan(
            "select r.room, e.host from Readings r, Events e "
            "where r.room = e.room"
        )
        assert check_bounds(plan) == []

    def test_ra102_distinct_over_stream(self):
        plan = _plan("select distinct r.room from Readings r")
        diags = check_bounds(plan)
        assert "RA102" in _codes(diags)
        assert all(d.severity == WARNING for d in diags if d.code == "RA102")

    def test_ra103_grouped_running_aggregate_warns(self):
        catalog = _catalog()
        plan = Aggregate(
            _scan(catalog, "Readings", "r"),
            [ColumnRef("r.room")],
            [AggregateItem(AggregateCall("COUNT"), "n")],
            window=None,
        )
        diags = check_bounds(plan)
        assert _codes(diags) == ["RA103"]
        assert diags[0].severity == WARNING

    def test_ra103_global_running_aggregate_is_info(self):
        catalog = _catalog()
        plan = Aggregate(
            _scan(catalog, "Readings", "r"),
            [],
            [AggregateItem(AggregateCall("COUNT"), "n")],
            window=None,
        )
        diags = check_bounds(plan)
        assert _codes(diags) == ["RA103"]
        assert diags[0].severity == INFO

    def test_ra104_explicit_unbounded_window(self):
        plan = _plan("select r.room from Readings r [unbounded] group by r.room")
        report = analyze_plan(plan)
        assert report.has_code("RA104") and not report.ok

    def test_remote_source_counts_as_infinite(self):
        remote = RemoteSource("remote_1", READINGS.qualified("r"), rate=2.0)
        plan = Distinct(remote)
        assert _codes(check_bounds(plan)) == ["RA102"]


# ----------------------------------------------------------------------
# RA2xx: progress / punctuation soundness
# ----------------------------------------------------------------------
class TestProgress:
    def test_ra200_windowed_aggregate_unblocked_by_window_close(self):
        plan = _plan(
            "select r.room, count(*) as n from Readings r "
            "[range 30 seconds] group by r.room"
        )
        diags = check_progress(plan)
        assert "RA200" in _codes(diags)
        assert all(d.severity == INFO for d in diags)

    def test_ra201_order_by_limit_and_running_aggregate(self):
        catalog = _catalog()
        scan = _scan(catalog, "Readings", "r")
        assert _codes(
            check_progress(OrderBy(scan, [OrderItem(ColumnRef("r.temp"), True)]))
        ) == ["RA201"]
        assert _codes(check_progress(Limit(scan, 5))) == ["RA201"]
        running = Aggregate(
            scan, [], [AggregateItem(AggregateCall("COUNT"), "n")], window=None
        )
        assert _codes(check_progress(running)) == ["RA201"]

    def test_table_only_blocking_operators_are_silent(self):
        plan = _plan("select m.host from Machines m order by m.host limit 3")
        assert check_progress(plan) == []

    def test_ra203_recursive_over_infinite_stream(self):
        catalog = _catalog()
        base = Project(
            _scan(catalog, "Readings", "r"),
            [ProjectItem(ColumnRef("r.room"), "n")],
        )
        recursive = Recursive(
            "spin", Schema.of(("n", DataType.STRING)), base, base
        )
        diags = check_progress(recursive)
        assert _codes(diags) == ["RA203"]
        assert diags[0].severity == ERROR


# ----------------------------------------------------------------------
# RA3xx: partition-safety verdict codes
# ----------------------------------------------------------------------
class TestPartitionCodes:
    KEYS = {"readings": "room", "events": "room"}

    def _verdict(self, plan, keys=None):
        return partition_safe(plan, self.KEYS if keys is None else keys)

    def test_ra300_aligned_grouped_aggregate(self):
        plan = _plan(
            "select r.room, count(*) as n from Readings r "
            "[range 10 seconds] group by r.room"
        )
        verdict = self._verdict(plan)
        assert verdict.safe and verdict.code == "RA300"
        assert partition_diagnostic(plan, self.KEYS).code == "RA300"

    def test_ra301_order_by(self):
        plan = _plan("select r.room from Readings r order by r.room")
        assert self._verdict(plan).code == "RA301"

    def test_ra302_limit(self):
        plan = _plan("select r.room from Readings r limit 5")
        assert self._verdict(plan).code == "RA302"

    def test_ra303_rows_window(self):
        plan = _plan(
            "select r.room, count(*) as n from Readings r [rows 10] "
            "group by r.room"
        )
        assert self._verdict(plan).code == "RA303"

    def test_ra304_replicated_only(self):
        plan = _plan("select m.host from Machines m")
        assert self._verdict(plan).code == "RA304"

    def test_ra305_no_partitioned_stream(self):
        catalog = _catalog()
        plan = Project(
            RemoteSource("remote_1", READINGS.qualified("r"), rate=1.0),
            [ProjectItem(ColumnRef("r.room"), "room")],
        )
        # RemoteSource is partitioned-but-keyless; an all-replicated scan
        # is RA304, a keyless *empty* mapping over tables is RA305:
        table_only = Select(
            _scan(catalog, "Machines", "m"),
            BinaryOp("=", ColumnRef("m.room"), Literal("lab1")),
        )
        assert self._verdict(table_only).code == "RA304"
        del plan  # RemoteSource path asserted via RA308 below

    def test_ra305_empty_plan_reads_nothing_partitioned(self):
        # A plan over only replicated inputs with no keys declared at
        # all still funnels to a designated engine.
        plan = _plan("select m.host from Machines m where m.room = 'lab1'")
        assert self._verdict(plan, keys={}).code == "RA304"
        verdict = partition_safe(
            Project(
                RemoteSource("remote_9", READINGS.qualified("r")),
                [ProjectItem(ColumnRef("r.room"), "room")],
            ),
            {},
        )
        assert verdict.safe  # keyless feed: row-local chain stays parallel

    def test_ra306_distinct_without_key(self):
        plan = _plan("select distinct r.temp from Readings r")
        assert self._verdict(plan).code == "RA306"

    def test_ra307_aggregate_over_replicated(self):
        plan = _plan("select count(*) as n from Machines m group by m.room")
        assert self._verdict(plan).code == "RA307"

    def test_ra308_key_projected_away(self):
        plan = _plan(
            "select r.temp, count(*) as n from Readings r group by r.temp"
        )
        assert self._verdict(plan).code == "RA309"
        # Round-robin stream (no declared key): RA308.
        assert self._verdict(plan, keys={}).code == "RA308"

    def test_ra309_group_by_not_covering(self):
        plan = _plan(
            "select r.temp, count(*) as n from Readings r group by r.temp"
        )
        assert self._verdict(plan).code == "RA309"

    def test_ra310_join_keys_unaligned(self):
        plan = _plan(
            "select r.room, e.host from Readings r, Events e "
            "where r.temp > 1.0 and e.host = 'ws1'"
        )
        assert self._verdict(plan).code == "RA310"

    def test_ra311_key_not_a_column(self):
        plan = _plan("select r.room from Readings r")
        assert self._verdict(plan, keys={"readings": "ghost"}).code == "RA311"

    def test_ra312_unrecognized_operator(self):
        catalog = _catalog()
        base = Project(
            _scan(catalog, "Machines", "m"),
            [ProjectItem(ColumnRef("m.host"), "n")],
        )
        recursive = Recursive("c", Schema.of(("n", DataType.STRING)), base, base)
        assert self._verdict(recursive).code == "RA312"

    def test_partition_diagnostic_reports_fallback_reason(self):
        plan = _plan("select r.room from Readings r order by r.room")
        diagnostic = partition_diagnostic(plan, self.KEYS)
        assert diagnostic.code == "RA301"
        assert "designated engine" in diagnostic.message

    def test_partition_diagnostic_reports_exchange_rescue(self):
        plan = _plan(
            "select r.temp, count(*) as n from Readings r "
            "[range 10 seconds] group by r.temp"
        )
        diagnostic = partition_diagnostic(plan, self.KEYS)
        assert diagnostic.code == "RA309"
        assert "repartitions mid-plan" in diagnostic.message


# ----------------------------------------------------------------------
# RA32x: exchange (mid-plan repartitioning) decisions
# ----------------------------------------------------------------------
class TestExchangeCodes:
    KEYS = {"readings": "room", "events": "room"}

    def _codes(self, plan, keys=None):
        return _codes(
            exchange_diagnostics(plan, self.KEYS if keys is None else keys)
        )

    def test_safe_plan_has_no_exchange_diagnostics(self):
        plan = _plan(
            "select r.room, count(*) as n from Readings r "
            "[range 10 seconds] group by r.room"
        )
        assert self._codes(plan) == []

    def test_designated_engine_by_design_stays_silent(self):
        # Replicated-only plans want one engine; a shuffle adds nothing.
        assert self._codes(_plan("select m.host from Machines m")) == []

    def test_ra320_join_shuffle(self):
        plan = _plan(
            "select r.room, e.host from Readings r [range 10 seconds], "
            "Events e [range 10 seconds] where r.room = e.host"
        )
        assert self._codes(plan) == ["RA320"]

    def test_ra321_two_phase_aggregation(self):
        plan = _plan(
            "select r.temp, count(*) as n from Readings r "
            "[range 10 seconds] group by r.temp"
        )
        assert self._codes(plan) == ["RA321"]

    def test_ra322_distinct_shuffle(self):
        plan = _plan("select distinct r.temp from Readings r")
        assert self._codes(plan) == ["RA322"]

    def test_ra323_broadcast_table_noted(self):
        plan = _plan(
            "select r.temp, count(*) as n from Readings r "
            "[range 10 seconds], Machines m where r.room = m.room "
            "group by r.temp"
        )
        assert self._codes(plan) == ["RA321", "RA323"]

    def test_ra324_no_strategy_applies(self):
        plan = _plan("select r.room from Readings r order by r.room")
        assert self._codes(plan) == ["RA324"]

    def test_ra325_round_robin_ingest(self):
        plan = _plan(
            "select r.temp, count(*) as n from Readings r "
            "[range 10 seconds] group by r.temp"
        )
        assert self._codes(plan, keys={}) == ["RA321", "RA325"]

    def test_explain_diagnostics_include_exchange_section(self):
        catalog = _catalog()
        plan = _plan(
            "select r.temp, count(*) as n from Readings r "
            "[range 10 seconds] group by r.temp"
        )
        from repro.core import FederatedOptimizer

        federated = FederatedOptimizer(catalog).optimize(plan)
        codes = _codes(
            explain_diagnostics(plan, federated, shard_keys=self.KEYS)
        )
        assert "RA309" in codes and "RA321" in codes


# ----------------------------------------------------------------------
# RA4xx: sharing eligibility
# ----------------------------------------------------------------------
class TestSharingCodes:
    def test_ra400_plain_stream_plan(self):
        plan = _plan("select r.room from Readings r where r.temp > 1.0")
        shareable, code, _ = sharing_eligibility(plan)
        assert shareable and code == "RA400"
        assert sharing_diagnostic(plan).code == "RA400"

    def test_ra401_output(self):
        plan = Output(_plan("select r.room from Readings r"), "display")
        assert sharing_eligibility(plan)[1] == "RA401"

    def test_ra402_remote_source(self):
        plan = Project(
            RemoteSource("remote_1", READINGS.qualified("r")),
            [ProjectItem(ColumnRef("r.room"), "room")],
        )
        assert sharing_eligibility(plan)[1] == "RA402"

    def test_ra403_cte_ref(self):
        from repro.plan.logical import CteRef

        plan = Project(
            CteRef("c", "c", Schema.of(("n", DataType.STRING))),
            [ProjectItem(ColumnRef("c.n"), "n")],
        )
        assert sharing_eligibility(plan)[1] == "RA403"

    def test_ra404_stored_table_scan(self):
        plan = _plan("select m.host from Machines m")
        assert sharing_eligibility(plan)[1] == "RA404"

    def test_ra405_no_fingerprint(self):
        catalog = _catalog()
        base = Project(
            _scan(catalog, "Readings", "r"),
            [ProjectItem(ColumnRef("r.room"), "n")],
        )
        recursive = Recursive("c", Schema.of(("n", DataType.STRING)), base, base)
        shareable, code, _ = sharing_eligibility(recursive)
        assert not shareable and code == "RA405"


# ----------------------------------------------------------------------
# RA5xx: federated explanation (unit-level; session-level in
# test_analysis_corpus.py)
# ----------------------------------------------------------------------
class TestFederatedCodes:
    def _federated(self, stream_plan, pushed=()):
        # Minimal stand-in: federated_diagnostics only touches pushed,
        # stream_plan, cost and alternatives.
        class _Cost:
            total = 0.5

        class _Alt:
            def __init__(self, plan):
                self.stream_plan = plan
                self.pushed = list(pushed)
                self.normalized = _Cost()

        class _Fed:
            def __init__(self, plan):
                self.chosen = _Alt(plan)
                self.alternatives = [self.chosen]
                self.stream_plan = plan
                self.pushed = list(pushed)
                self.cost = _Cost()

        return _Fed(stream_plan)

    def test_ra500_and_ra503_pure_stream(self):
        plan = _plan("select r.room from Readings r")
        codes = _codes(federated_diagnostics(self._federated(plan)))
        assert codes == ["RA500", "RA503"]

    def test_ra501_pushed_fragment(self):
        class _Deployment:
            kind = "aggregation"
            relations = ("RoomTemps",)

        class _SensorCost:
            messages_per_epoch = 2.5

        class _Fragment:
            name = "remote_1"
            deployment = _Deployment()
            cost = _SensorCost()
            result_rate = 0.2

        plan = _plan("select r.room from Readings r")
        codes = _codes(
            federated_diagnostics(self._federated(plan, pushed=[_Fragment()]))
        )
        assert codes == ["RA501", "RA503"]

    def test_ra502_raw_sensor_scan_left_in_residual(self):
        from repro.catalog import EngineLocation, SourceKind

        catalog = Catalog()
        catalog.register_source(
            "RoomTemps", READINGS, SourceKind.STREAM, EngineLocation.SENSOR
        )
        residual = Select(
            Scan(catalog.source("RoomTemps"), "t"),
            BinaryOp(">", ColumnRef("t.temp"), Literal(20.0)),
        )
        codes = _codes(federated_diagnostics(self._federated(residual)))
        assert codes == ["RA502", "RA503"]

    def test_explain_diagnostics_orders_sections(self):
        plan = _plan("select r.room from Readings r where r.temp > 1.0")
        federated = self._federated(plan)
        diags = explain_diagnostics(
            plan, federated, shard_keys={"readings": "room"}
        )
        codes = _codes(diags)
        # partition verdict, sharing verdict, then federated decisions
        assert codes[0].startswith("RA3")
        assert codes[1].startswith("RA4")
        assert codes[2:] == ["RA500", "RA503"]
        no_shards = explain_diagnostics(plan, federated, shard_keys=None)
        assert not any(code.startswith("RA3") for code in _codes(no_shards))


# ----------------------------------------------------------------------
# analyze_plan composition
# ----------------------------------------------------------------------
class TestAnalyzePlan:
    def test_clean_plan_reports_ok(self):
        report = analyze_plan(
            _plan(
                "select r.room, count(*) as n from Readings r "
                "[range 10 seconds] group by r.room"
            )
        )
        assert report.ok
        assert report.has_code("RA200")  # explanation, not a defect

    def test_recursive_plan_analyzes_both_halves(self):
        plan = _plan(
            "with recursive c (n) as "
            "(select m.host from Machines m "
            "union select c.n from c, Machines m where c.n = m.host) "
            "select c.n from c"
        )
        report = analyze_plan(plan)
        assert report.ok  # stored-table recursion is sound

    def test_error_plan_not_ok(self):
        report = analyze_plan(
            _plan("select r.room from Readings r [unbounded] group by r.room")
        )
        assert not report.ok and report.has_code("RA104")


# ----------------------------------------------------------------------
# RA9xx: engine-invariant linter
# ----------------------------------------------------------------------
class TestEngineLinter:
    def _tree(self, tmp_path, files: dict[str, str]):
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return tmp_path

    def test_installed_engine_is_clean(self):
        assert lint_engine() == []

    def test_ra901_unpaired_snapshot(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/ops.py": (
                    "class Operator:\n"
                    "    pass\n"
                    "class Leaky(Operator):\n"
                    "    def state_snapshot(self):\n"
                    "        return {}\n"
                ),
            },
        )
        diags = lint_engine(root)
        assert _codes(diags) == ["RA901"]
        assert "Leaky" in diags[0].message

    def test_ra901_unpaired_restore(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/ops.py": (
                    "class Operator:\n"
                    "    pass\n"
                    "class Half(Operator):\n"
                    "    def state_restore(self, state):\n"
                    "        pass\n"
                ),
            },
        )
        assert _codes(lint_engine(root)) == ["RA901"]

    def test_ra901_transitive_subclass_detected(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/ops.py": (
                    "class Operator:\n"
                    "    pass\n"
                    "class Middle(Operator):\n"
                    "    pass\n"
                    "class Deep(Middle):\n"
                    "    def state_snapshot(self):\n"
                    "        return {}\n"
                ),
            },
        )
        diags = lint_engine(root)
        assert _codes(diags) == ["RA901"] and "Deep" in diags[0].message

    def test_ra902_push_batch_drops_punctuation(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/ops.py": (
                    "class Operator:\n"
                    "    pass\n"
                    "class Batchy(Operator):\n"
                    "    def push_batch(self, items):\n"
                    "        for item in items:\n"
                    "            self.emit(item)\n"
                ),
            },
        )
        diags = lint_engine(root)
        assert _codes(diags) == ["RA902"]
        assert "Batchy" in diags[0].message

    def test_ra902_punctuation_check_is_safe(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/ops.py": (
                    "class Operator:\n"
                    "    pass\n"
                    "class Careful(Operator):\n"
                    "    def push_batch(self, items):\n"
                    "        for item in items:\n"
                    "            if isinstance(item, Punctuation):\n"
                    "                self.flush()\n"
                    "            else:\n"
                    "                self.emit(item)\n"
                ),
            },
        )
        assert lint_engine(root) == []

    def test_ra902_per_item_push_fallback_is_safe(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/ops.py": (
                    "class Operator:\n"
                    "    pass\n"
                    "class Delegating(Operator):\n"
                    "    def push_batch(self, items):\n"
                    "        for item in items:\n"
                    "            self.push(item)\n"
                ),
            },
        )
        assert lint_engine(root) == []

    def test_ra903_layering_violation(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "errors/__init__.py": "",
                "errors/bad.py": "from repro.sql.parser import parse\n",
            },
        )
        diags = lint_engine(root)
        assert _codes(diags) == ["RA903"]
        assert "errors/bad.py:1" in diags[0].operator

    def test_ra903_lazy_import_is_exempt(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "errors/__init__.py": "",
                "errors/lazy.py": (
                    "def helper():\n"
                    "    from repro.sql.parser import parse\n"
                    "    return parse\n"
                ),
            },
        )
        assert lint_engine(root) == []

    def test_ra903_allowed_edge_is_silent(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "plan/__init__.py": "",
                "plan/x.py": "from repro.sql.expressions import Expr\n",
            },
        )
        assert lint_engine(root) == []

    def test_ra904_import_time_engine_singleton(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/__init__.py": "",
                "stream/bad.py": (
                    "from repro.stream.engine import StreamEngine\n"
                    "ENGINE = StreamEngine(None)\n"
                ),
            },
        )
        diags = lint_engine(root)
        assert _codes(diags) == ["RA904"]
        assert "stream/bad.py:2" in diags[0].operator

    def test_ra904_singleton_inside_expression_detected(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "data/__init__.py": "",
                "data/bad.py": "POOLS = [ShardedStreamEngine(c) for c in CATS]\n",
            },
        )
        assert _codes(lint_engine(root)) == ["RA904"]

    def test_ra904_function_scoped_engine_is_exempt(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/__init__.py": "",
                "stream/ok.py": (
                    "def build(catalog):\n"
                    "    return StreamEngine(catalog)\n"
                ),
            },
        )
        assert lint_engine(root) == []

    def test_ra904_lambda_queue_frame(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/__init__.py": "",
                "stream/chan.py": (
                    "import multiprocessing\n"
                    "def feed(q):\n"
                    "    q.put(lambda row: row)\n"
                ),
            },
        )
        diags = lint_engine(root)
        assert _codes(diags) == ["RA904"]
        assert "lambda" in diags[0].message

    def test_ra904_bound_method_queue_frame(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/__init__.py": "",
                "stream/chan.py": (
                    "import multiprocessing\n"
                    "class Channel:\n"
                    "    def feed(self, q):\n"
                    "        q.put(self.callback)\n"
                ),
            },
        )
        diags = lint_engine(root)
        assert _codes(diags) == ["RA904"]
        assert "bound attribute" in diags[0].message

    def test_ra904_tuple_frames_are_clean(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "stream/__init__.py": "",
                "stream/chan.py": (
                    "import multiprocessing\n"
                    "def feed(q, rows):\n"
                    "    frame = ('data', rows)\n"
                    "    q.put(frame)\n"
                    "    q.put_nowait(('punct', 1.0))\n"
                ),
            },
        )
        assert lint_engine(root) == []

    def test_ra904_put_without_multiprocessing_is_exempt(self, tmp_path):
        """Plain in-process queues (no multiprocessing import) may carry
        anything — the rule polices only the process boundary."""
        root = self._tree(
            tmp_path,
            {
                "api/__init__.py": "",
                "api/q.py": (
                    "def feed(q):\n"
                    "    q.put(lambda row: row)\n"
                ),
            },
        )
        assert lint_engine(root) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    CORPUS = (
        "-- !stream Readings room:string temp:float\n"
        "-- !table Machines host:string room:string\n"
        "\n"
        "select r.room, r.temp from Readings r where r.temp > 24.0;\n"
        "select distinct r.room from Readings r;\n"
        "select r.room from Readings r [unbounded] group by r.room;\n"
    )

    def test_corpus_mode_reports_codes_and_fails_on_errors(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        corpus = tmp_path / "corpus.sql"
        corpus.write_text(self.CORPUS)
        status = main([str(corpus)])
        out = capsys.readouterr().out
        assert status == 1  # the [unbounded] statement is an error
        assert "[RA104]" in out and "[RA400]" in out

    def test_corpus_strict_escalates_warnings(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        corpus = tmp_path / "corpus.sql"
        corpus.write_text(
            "-- !stream Readings room:string temp:float\n"
            "select distinct r.room from Readings r;\n"
        )
        assert main([str(corpus)]) == 0
        assert main([str(corpus), "--strict"]) == 1
        assert "[RA102]" in capsys.readouterr().out

    def test_corpus_compile_errors_are_failures(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        corpus = tmp_path / "corpus.sql"
        corpus.write_text(
            "-- !stream Readings room:string temp:float\n"
            "select r.ghost from Readings r;\n"
        )
        assert main([str(corpus)]) == 1
        assert "compile error" in capsys.readouterr().out

    def test_self_mode_is_clean(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--self"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
