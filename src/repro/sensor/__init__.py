"""The in-network sensor engine and its simulated substrate.

Motes, radios, batteries, collection trees, TAG-style aggregation,
per-pair in-network joins, RFID detection and the message-minimizing
optimizer.
"""

from repro.sensor.energy import DEFAULT_ENERGY_MODEL, Battery, EnergyModel
from repro.sensor.engine import (
    DeployedQuery,
    JoinPair,
    JoinStrategy,
    SensorEngine,
    SensorRelation,
)
from repro.sensor.mote import Mote, MoteRole, Position
from repro.sensor.network import (
    HEADER_BYTES,
    HOP_LATENCY,
    MAX_RETRIES,
    MessageStats,
    SensorNetwork,
)
from repro.sensor.optimizer import (
    JoinSiteDecision,
    SensorCost,
    SensorCostModel,
    SensorDeployment,
    SensorEngineOptimizer,
    partition_plan,
)
from repro.sensor.radio import LinkQuality, RadioModel
from repro.sensor.rfid import Beacon, Localizer, RFIDService, Sighting

__all__ = [
    "Mote",
    "MoteRole",
    "Position",
    "Battery",
    "EnergyModel",
    "DEFAULT_ENERGY_MODEL",
    "RadioModel",
    "LinkQuality",
    "SensorNetwork",
    "MessageStats",
    "HOP_LATENCY",
    "HEADER_BYTES",
    "MAX_RETRIES",
    "SensorEngine",
    "SensorRelation",
    "DeployedQuery",
    "JoinPair",
    "JoinStrategy",
    "SensorCost",
    "SensorCostModel",
    "SensorEngineOptimizer",
    "SensorDeployment",
    "JoinSiteDecision",
    "partition_plan",
    "Beacon",
    "RFIDService",
    "Localizer",
    "Sighting",
]
