"""Scalar and aggregate expressions.

One expression tree serves three layers: the Stream SQL parser produces
it, the analyzer/typing pass validates it against schemas, and the
physical operators evaluate it against :class:`~repro.data.tuples.Row`
values. Keeping a single representation avoids a lowering step and makes
plans renderable back to SQL (used by the federated optimizer when it
ships a fragment to a remote engine).
"""

from __future__ import annotations

import fnmatch
import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.data.schema import Schema
from repro.data.types import (
    NUMERIC_TYPES,
    ORDERED_TYPES,
    DataType,
    common_type,
    infer_type,
)
from repro.errors import AnalysisError, ExecutionError, TypeMismatchError


class Expr:
    """Base class for scalar expressions."""

    def eval(self, row: Any) -> Any:
        """Evaluate against a row (anything supporting ``row[name]``)."""
        raise NotImplementedError

    def dtype(self, schema: Schema) -> DataType:
        """Static result type under ``schema``; raises on type errors."""
        raise NotImplementedError

    def columns(self) -> list[str]:
        """All column names referenced, in first-appearance order."""
        out: list[str] = []
        for node in self.walk():
            if isinstance(node, ColumnRef) and node.name not in out:
                out.append(node.name)
        return out

    def relations(self) -> set[str]:
        """Relation qualifiers referenced by this expression."""
        quals = set()
        for name in self.columns():
            if "." in name:
                quals.add(name.rsplit(".", 1)[0])
        return quals

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Expr", ...]:
        return ()

    def render(self) -> str:
        """Render back to Stream SQL surface syntax."""
        raise NotImplementedError

    def contains_aggregate(self) -> bool:
        """True if any node in the tree is an :class:`AggregateCall`."""
        return any(isinstance(node, AggregateCall) for node in self.walk())

    # Convenience builders so plans can be written fluently in Python.
    def __and__(self, other: "Expr") -> "Expr":
        return BinaryOp("AND", self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return BinaryOp("OR", self, other)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.render()}>"


@dataclass(frozen=True, repr=False)
class Literal(Expr):
    """A constant value."""

    value: Any

    def eval(self, row: Any) -> Any:
        return self.value

    def dtype(self, schema: Schema) -> DataType:
        return infer_type(self.value)

    def render(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if self.value is None:
            return "NULL"
        return f"{self.value:g}" if isinstance(self.value, float) else str(self.value)


@dataclass(frozen=True, repr=False)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    name: str

    def eval(self, row: Any) -> Any:
        return row[self.name]

    def dtype(self, schema: Schema) -> DataType:
        return schema.dtype(self.name)

    def render(self) -> str:
        return self.name

    @property
    def bare_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    @property
    def qualifier(self) -> str | None:
        return self.name.rsplit(".", 1)[0] if "." in self.name else None


class Parameter(Expr):
    """A named placeholder (``:name``) bound at execution time.

    Prepared statements (:meth:`repro.api.Session.prepare`) parse, analyze
    and plan a statement once with Parameter leaves left in place. Each
    execution rebinds the parameter's value slot; compiled evaluators
    (:mod:`repro.sql.compiled`) read the slot per call, so the plan — and
    its memoized compiled closures — are reused across executions.

    Instances are identity-equal: every ``:name`` occurrence in the text
    is its own node, and a prepared statement binds all occurrences of a
    name together. Evaluating an unbound parameter raises
    :class:`~repro.errors.ExecutionError`.
    """

    _UNBOUND = object()

    def __init__(self, name: str):
        self.name = name
        self._value: Any = Parameter._UNBOUND

    @property
    def bound(self) -> bool:
        return self._value is not Parameter._UNBOUND

    def bind(self, value: Any) -> None:
        self._value = value

    def unbind(self) -> None:
        self._value = Parameter._UNBOUND

    def value(self) -> Any:
        """Current binding; raises when unbound (used by compiled code)."""
        if self._value is Parameter._UNBOUND:
            raise ExecutionError(f"parameter :{self.name} is not bound")
        return self._value

    def eval(self, row: Any) -> Any:
        return self.value()

    def dtype(self, schema: Schema) -> DataType:
        # The value's type is unknown until execution; NULL is absorbed
        # by every type in common_type, so parameters compose with any
        # comparison or arithmetic context.
        return DataType.NULL

    def render(self) -> str:
        return f":{self.name}"


def collect_parameters(exprs: "Iterator[Expr] | list[Expr]") -> dict[str, list[Parameter]]:
    """Group every :class:`Parameter` occurrence in ``exprs`` by name."""
    out: dict[str, list[Parameter]] = {}
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, Parameter):
                out.setdefault(node.name, []).append(node)
    return out


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    """Compile a SQL LIKE pattern (``%``, ``_``) to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True, repr=False)
class BinaryOp(Expr):
    """A binary operation: comparison, arithmetic, boolean connective or LIKE.

    The paper's demo query uses ``^`` as conjunction in its figure; the
    parser normalises both ``AND`` and ``^`` to the operator ``"AND"``.
    """

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def eval(self, row: Any) -> Any:
        op = self.op
        if op == "AND":
            left = self.left.eval(row)
            if left is False:
                return False
            right = self.right.eval(row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.left.eval(row)
            if left is True:
                return True
            right = self.right.eval(row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.left.eval(row)
        right = self.right.eval(row)
        if left is None or right is None:
            return None
        try:
            if op in _COMPARISONS:
                return _COMPARISONS[op](left, right)
            if op in _ARITHMETIC:
                if op in ("/", "%") and right == 0:
                    return None  # SQL: division by zero yields NULL here
                return _ARITHMETIC[op](left, right)
            if op == "LIKE":
                return bool(_like_to_regex(str(right)).match(str(left)))
            if op == "NOT LIKE":
                return not _like_to_regex(str(right)).match(str(left))
        except TypeError as exc:
            raise ExecutionError(f"cannot apply {op} to {left!r} and {right!r}") from exc
        raise ExecutionError(f"unknown binary operator {op!r}")

    def dtype(self, schema: Schema) -> DataType:
        op = self.op
        lt = self.left.dtype(schema)
        rt = self.right.dtype(schema)
        if op in ("AND", "OR"):
            for side, t in (("left", lt), ("right", rt)):
                if t not in (DataType.BOOL, DataType.NULL):
                    raise AnalysisError(f"{op} requires boolean operands; {side} is {t.value}")
            return DataType.BOOL
        if op in _COMPARISONS:
            merged = common_type(lt, rt)  # raises on incomparable types
            if op not in ("=", "!=", "<>") and merged not in ORDERED_TYPES | {DataType.NULL}:
                raise AnalysisError(f"ordering comparison {op} undefined for {merged.value}")
            return DataType.BOOL
        if op in _ARITHMETIC:
            merged = common_type(lt, rt)
            if op == "+" and merged is DataType.STRING:
                return DataType.STRING  # string concatenation
            if merged not in NUMERIC_TYPES | {DataType.TIMESTAMP, DataType.NULL}:
                raise AnalysisError(f"arithmetic {op} undefined for {merged.value}")
            if op == "/":
                return DataType.FLOAT
            return merged
        if op in ("LIKE", "NOT LIKE"):
            for side, t in (("left", lt), ("right", rt)):
                if t not in (DataType.STRING, DataType.NULL):
                    raise AnalysisError(f"LIKE requires string operands; {side} is {t.value}")
            return DataType.BOOL
        raise AnalysisError(f"unknown binary operator {self.op!r}")

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True, repr=False)
class UnaryOp(Expr):
    """NOT, unary minus, IS NULL, IS NOT NULL."""

    op: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def eval(self, row: Any) -> Any:
        value = self.operand.eval(row)
        if self.op == "NOT":
            return None if value is None else (not value)
        if self.op == "-":
            return None if value is None else -value
        if self.op == "IS NULL":
            return value is None
        if self.op == "IS NOT NULL":
            return value is not None
        raise ExecutionError(f"unknown unary operator {self.op!r}")

    def dtype(self, schema: Schema) -> DataType:
        inner = self.operand.dtype(schema)
        if self.op == "NOT":
            if inner not in (DataType.BOOL, DataType.NULL):
                raise AnalysisError(f"NOT requires boolean, got {inner.value}")
            return DataType.BOOL
        if self.op == "-":
            if inner not in NUMERIC_TYPES | {DataType.NULL}:
                raise AnalysisError(f"unary minus requires numeric, got {inner.value}")
            return inner if inner is not DataType.NULL else DataType.INT
        if self.op in ("IS NULL", "IS NOT NULL"):
            return DataType.BOOL
        raise AnalysisError(f"unknown unary operator {self.op!r}")

    def render(self) -> str:
        if self.op in ("IS NULL", "IS NOT NULL"):
            return f"({self.operand.render()} {self.op})"
        return f"({self.op} {self.operand.render()})"


_SCALAR_FUNCTIONS: dict[str, tuple[Callable[..., Any], DataType | None]] = {
    # name -> (implementation, fixed return type or None meaning "same as arg")
    "ABS": (abs, None),
    "SQRT": (math.sqrt, DataType.FLOAT),
    "FLOOR": (lambda x: float(math.floor(x)), DataType.FLOAT),
    "CEIL": (lambda x: float(math.ceil(x)), DataType.FLOAT),
    "ROUND": (lambda x, n=0: round(float(x), int(n)), DataType.FLOAT),
    "LOWER": (lambda s: str(s).lower(), DataType.STRING),
    "UPPER": (lambda s: str(s).upper(), DataType.STRING),
    "LENGTH": (lambda s: len(str(s)), DataType.INT),
    "COALESCE": (lambda *xs: next((x for x in xs if x is not None), None), None),
    "GREATEST": (lambda *xs: max(xs), None),
    "LEAST": (lambda *xs: min(xs), None),
}


@dataclass(frozen=True, repr=False)
class FunctionCall(Expr):
    """A scalar function call (``ABS``, ``LOWER``, ``COALESCE``, ...)."""

    name: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def eval(self, row: Any) -> Any:
        upper = self.name.upper()
        if upper not in _SCALAR_FUNCTIONS:
            raise ExecutionError(f"unknown function {self.name!r}")
        fn, _ = _SCALAR_FUNCTIONS[upper]
        values = [arg.eval(row) for arg in self.args]
        if upper != "COALESCE" and any(v is None for v in values):
            return None
        return fn(*values)

    def dtype(self, schema: Schema) -> DataType:
        upper = self.name.upper()
        if upper not in _SCALAR_FUNCTIONS:
            raise AnalysisError(f"unknown function {self.name!r}")
        _, fixed = _SCALAR_FUNCTIONS[upper]
        arg_types = [a.dtype(schema) for a in self.args]
        if fixed is not None:
            return fixed
        if not arg_types:
            raise AnalysisError(f"{self.name} requires at least one argument")
        merged = arg_types[0]
        for t in arg_types[1:]:
            merged = common_type(merged, t)
        return merged

    def render(self) -> str:
        inner = ", ".join(a.render() for a in self.args)
        return f"{self.name.upper()}({inner})"


AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

#: Aggregates a mote can compute incrementally in-network (TAG-style
#: partial-state records). All five decompose, so all are pushable.
SENSOR_PUSHABLE_AGGREGATES = AGGREGATE_NAMES


@dataclass(frozen=True, repr=False)
class AggregateCall(Expr):
    """An aggregate function over a window / group (``SUM(m.cpu)``).

    ``COUNT(*)`` is represented with ``argument=None``. ``eval`` is
    deliberately unimplemented: aggregates are computed by the aggregate
    operator, which evaluates the *argument* per row and combines.
    """

    name: str
    argument: Expr | None = None
    distinct: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.argument,) if self.argument is not None else ()

    def eval(self, row: Any) -> Any:
        raise ExecutionError(
            f"aggregate {self.name} cannot be evaluated per-row; "
            "it must be computed by an Aggregate operator"
        )

    def dtype(self, schema: Schema) -> DataType:
        upper = self.name.upper()
        if upper not in AGGREGATE_NAMES:
            raise AnalysisError(f"unknown aggregate {self.name!r}")
        if upper == "COUNT":
            return DataType.INT
        if self.argument is None:
            raise AnalysisError(f"{upper} requires an argument")
        inner = self.argument.dtype(schema)
        if upper == "AVG":
            if inner not in NUMERIC_TYPES | {DataType.NULL}:
                raise AnalysisError(f"AVG undefined for {inner.value}")
            return DataType.FLOAT
        if upper == "SUM":
            if inner not in NUMERIC_TYPES | {DataType.NULL}:
                raise AnalysisError(f"SUM undefined for {inner.value}")
            return inner if inner is not DataType.NULL else DataType.INT
        # MIN / MAX preserve their argument type.
        if inner not in ORDERED_TYPES | {DataType.NULL}:
            raise AnalysisError(f"{upper} undefined for {inner.value}")
        return inner

    def render(self) -> str:
        arg = "*" if self.argument is None else self.argument.render()
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({distinct}{arg})"


# ---------------------------------------------------------------------------
# Predicate utilities used by the rewriter and the optimizers
# ---------------------------------------------------------------------------
def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its AND-ed conjuncts.

    ``None`` (no predicate) yields an empty list. Used by predicate
    pushdown and by the join-order enumerator to assign each conjunct to
    the lowest plan node that can evaluate it.
    """
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild a single predicate from conjuncts (inverse of split_conjuncts)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BinaryOp("AND", result, conjunct)
    return result


def is_equijoin_conjunct(expr: Expr) -> tuple[str, str] | None:
    """If ``expr`` is ``col_a = col_b`` over two different relations,
    return the pair of column names; otherwise None."""
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    if not (isinstance(expr.left, ColumnRef) and isinstance(expr.right, ColumnRef)):
        return None
    left_rel = expr.left.qualifier
    right_rel = expr.right.qualifier
    if left_rel is None or right_rel is None or left_rel == right_rel:
        return None
    return (expr.left.name, expr.right.name)


def substitute_columns(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace column references per ``mapping`` (used by view expansion).

    Unmapped columns are preserved. The result is a new tree; input is
    not mutated (expressions are frozen dataclasses).
    """
    if isinstance(expr, ColumnRef):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (Literal, Parameter)):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute_columns(expr.operand, mapping))
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(substitute_columns(a, mapping) for a in expr.args))
    if isinstance(expr, AggregateCall):
        arg = None if expr.argument is None else substitute_columns(expr.argument, mapping)
        return AggregateCall(expr.name, arg, expr.distinct)
    raise TypeMismatchError(f"cannot substitute into {type(expr).__name__}")


def substitute_parameters(expr: Expr, values: dict[str, Any]) -> Expr:
    """Replace :class:`Parameter` nodes with literal values per ``values``.

    Used when a prepared statement starts a *continuous* query: a running
    pipeline must own immutable bindings (a later execute() re-binding
    shared slots would otherwise change a live query's predicate), so the
    plan for a continuous execution gets parameters baked in as literals.
    Unmapped parameters are preserved.
    """
    if isinstance(expr, Parameter):
        return Literal(values[expr.name]) if expr.name in values else expr
    if isinstance(expr, (ColumnRef, Literal)):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            substitute_parameters(expr.left, values),
            substitute_parameters(expr.right, values),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute_parameters(expr.operand, values))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, tuple(substitute_parameters(a, values) for a in expr.args)
        )
    if isinstance(expr, AggregateCall):
        arg = None if expr.argument is None else substitute_parameters(expr.argument, values)
        return AggregateCall(expr.name, arg, expr.distinct)
    raise TypeMismatchError(f"cannot substitute parameters into {type(expr).__name__}")


def rename_relations(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite relation qualifiers per ``mapping`` (alias resolution)."""
    column_mapping: dict[str, Expr] = {}
    for name in expr.columns():
        if "." in name:
            qual, bare = name.rsplit(".", 1)
            if qual in mapping:
                column_mapping[name] = ColumnRef(f"{mapping[qual]}.{bare}")
    return substitute_columns(expr, column_mapping)
