"""Unit tests for expression evaluation, typing and utilities."""

import pytest

from repro.data import DataType, Row, Schema
from repro.errors import AnalysisError, ExecutionError
from repro.sql import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    UnaryOp,
    conjoin,
    is_equijoin_conjunct,
    rename_relations,
    split_conjuncts,
    substitute_columns,
    parse_select,
)

SCHEMA = Schema.of(
    ("a.x", DataType.INT),
    ("a.s", DataType.STRING),
    ("b.y", DataType.FLOAT),
    ("b.flag", DataType.BOOL),
)
ROW = Row(SCHEMA, (3, "hello", 2.5, True))


def expr_of(sql_fragment: str):
    """Parse a scalar expression via a dummy SELECT."""
    return parse_select(f"select {sql_fragment} from T").items[0].expr


class TestEval:
    def test_column_and_literal(self):
        assert ColumnRef("a.x").eval(ROW) == 3
        assert Literal(7).eval(ROW) == 7

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 3, 4, 7),
            ("-", 3, 4, -1),
            ("*", 3, 4, 12),
            ("/", 3, 4, 0.75),
            ("%", 7, 4, 3),
            ("=", 3, 3, True),
            ("!=", 3, 4, True),
            ("<", 3, 4, True),
            (">=", 3, 3, True),
        ],
    )
    def test_binary_arithmetic_and_comparison(self, op, left, right, expected):
        result = BinaryOp(op, Literal(left), Literal(right)).eval(ROW)
        assert result == expected

    def test_division_by_zero_yields_null(self):
        assert BinaryOp("/", Literal(1), Literal(0)).eval(ROW) is None
        assert BinaryOp("%", Literal(1), Literal(0)).eval(ROW) is None

    def test_string_concatenation(self):
        expr = BinaryOp("+", Literal("a"), BinaryOp("+", Literal("-"), Literal("b")))
        assert expr.eval(ROW) == "a-b"

    def test_like(self):
        assert BinaryOp("LIKE", Literal("Fedora Linux"), Literal("%Fedora%")).eval(ROW)
        assert not BinaryOp("LIKE", Literal("Windows"), Literal("%Fedora%")).eval(ROW)
        assert BinaryOp("LIKE", Literal("abc"), Literal("a_c")).eval(ROW)
        assert BinaryOp("NOT LIKE", Literal("abc"), Literal("x%")).eval(ROW)

    def test_like_is_case_insensitive(self):
        assert BinaryOp("LIKE", Literal("FEDORA"), Literal("%fedora%")).eval(ROW)

    def test_like_escapes_regex_chars(self):
        assert BinaryOp("LIKE", Literal("a.c"), Literal("a.c")).eval(ROW)
        assert not BinaryOp("LIKE", Literal("abc"), Literal("a.c")).eval(ROW)

    # --- three-valued logic -------------------------------------------
    def test_and_truth_table(self):
        T, F, N = Literal(True), Literal(False), Literal(None)
        assert BinaryOp("AND", T, T).eval(ROW) is True
        assert BinaryOp("AND", T, F).eval(ROW) is False
        assert BinaryOp("AND", F, N).eval(ROW) is False
        assert BinaryOp("AND", N, F).eval(ROW) is False
        assert BinaryOp("AND", T, N).eval(ROW) is None
        assert BinaryOp("AND", N, N).eval(ROW) is None

    def test_or_truth_table(self):
        T, F, N = Literal(True), Literal(False), Literal(None)
        assert BinaryOp("OR", F, F).eval(ROW) is False
        assert BinaryOp("OR", T, N).eval(ROW) is True
        assert BinaryOp("OR", N, T).eval(ROW) is True
        assert BinaryOp("OR", F, N).eval(ROW) is None
        assert BinaryOp("OR", N, N).eval(ROW) is None

    def test_null_propagates_through_comparison(self):
        assert BinaryOp("=", Literal(None), Literal(3)).eval(ROW) is None
        assert BinaryOp("<", ColumnRef("a.x"), Literal(None)).eval(ROW) is None

    def test_not(self):
        assert UnaryOp("NOT", Literal(False)).eval(ROW) is True
        assert UnaryOp("NOT", Literal(None)).eval(ROW) is None

    def test_is_null(self):
        assert UnaryOp("IS NULL", Literal(None)).eval(ROW) is True
        assert UnaryOp("IS NOT NULL", ColumnRef("a.x")).eval(ROW) is True

    def test_unary_minus(self):
        assert UnaryOp("-", ColumnRef("a.x")).eval(ROW) == -3
        assert UnaryOp("-", Literal(None)).eval(ROW) is None

    def test_functions(self):
        assert FunctionCall("ABS", (Literal(-4),)).eval(ROW) == 4
        assert FunctionCall("LOWER", (Literal("ABC"),)).eval(ROW) == "abc"
        assert FunctionCall("LENGTH", (Literal("abc"),)).eval(ROW) == 3
        assert FunctionCall("COALESCE", (Literal(None), Literal(5))).eval(ROW) == 5
        assert FunctionCall("GREATEST", (Literal(2), Literal(9))).eval(ROW) == 9

    def test_function_null_propagation(self):
        assert FunctionCall("ABS", (Literal(None),)).eval(ROW) is None

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            FunctionCall("FROBNICATE", ()).eval(ROW)

    def test_aggregate_cannot_eval_per_row(self):
        with pytest.raises(ExecutionError):
            AggregateCall("SUM", ColumnRef("a.x")).eval(ROW)


class TestTyping:
    def test_comparison_is_bool(self):
        assert BinaryOp(">", ColumnRef("a.x"), Literal(1)).dtype(SCHEMA) is DataType.BOOL

    def test_arith_widening(self):
        expr = BinaryOp("+", ColumnRef("a.x"), ColumnRef("b.y"))
        assert expr.dtype(SCHEMA) is DataType.FLOAT

    def test_division_always_float(self):
        expr = BinaryOp("/", ColumnRef("a.x"), Literal(2))
        assert expr.dtype(SCHEMA) is DataType.FLOAT

    def test_string_plus_is_concat(self):
        expr = BinaryOp("+", ColumnRef("a.s"), Literal("!"))
        assert expr.dtype(SCHEMA) is DataType.STRING

    def test_and_requires_bool(self):
        with pytest.raises(AnalysisError):
            BinaryOp("AND", ColumnRef("a.x"), Literal(True)).dtype(SCHEMA)

    def test_like_requires_strings(self):
        with pytest.raises(AnalysisError):
            BinaryOp("LIKE", ColumnRef("a.x"), Literal("%")).dtype(SCHEMA)

    def test_ordering_on_bool_rejected(self):
        with pytest.raises(AnalysisError):
            BinaryOp("<", ColumnRef("b.flag"), Literal(True)).dtype(SCHEMA)

    def test_equality_on_bool_ok(self):
        expr = BinaryOp("=", ColumnRef("b.flag"), Literal(True))
        assert expr.dtype(SCHEMA) is DataType.BOOL

    def test_aggregate_types(self):
        assert AggregateCall("COUNT", None).dtype(SCHEMA) is DataType.INT
        assert AggregateCall("SUM", ColumnRef("a.x")).dtype(SCHEMA) is DataType.INT
        assert AggregateCall("AVG", ColumnRef("a.x")).dtype(SCHEMA) is DataType.FLOAT
        assert AggregateCall("MIN", ColumnRef("a.s")).dtype(SCHEMA) is DataType.STRING

    def test_sum_of_string_rejected(self):
        with pytest.raises(AnalysisError):
            AggregateCall("SUM", ColumnRef("a.s")).dtype(SCHEMA)


class TestUtilities:
    def test_split_and_conjoin_roundtrip(self):
        expr = expr_of("a = 1 and b = 2 and c = 3")
        conjuncts = split_conjuncts(expr)
        assert len(conjuncts) == 3
        rebuilt = conjoin(conjuncts)
        assert sorted(c.render() for c in split_conjuncts(rebuilt)) == sorted(
            c.render() for c in conjuncts
        )

    def test_split_none(self):
        assert split_conjuncts(None) == []
        assert conjoin([]) is None

    def test_or_not_split(self):
        expr = expr_of("a = 1 or b = 2")
        assert len(split_conjuncts(expr)) == 1

    def test_is_equijoin_conjunct(self):
        expr = BinaryOp("=", ColumnRef("a.x"), ColumnRef("b.y"))
        assert is_equijoin_conjunct(expr) == ("a.x", "b.y")

    def test_same_relation_not_equijoin(self):
        expr = BinaryOp("=", ColumnRef("a.x"), ColumnRef("a.s"))
        assert is_equijoin_conjunct(expr) is None

    def test_constant_not_equijoin(self):
        expr = BinaryOp("=", ColumnRef("a.x"), Literal(3))
        assert is_equijoin_conjunct(expr) is None

    def test_substitute_columns(self):
        expr = BinaryOp("+", ColumnRef("a.x"), ColumnRef("b.y"))
        replaced = substitute_columns(expr, {"a.x": Literal(10)})
        assert replaced.eval(ROW) == 12.5

    def test_rename_relations(self):
        expr = BinaryOp("=", ColumnRef("a.x"), ColumnRef("b.y"))
        renamed = rename_relations(expr, {"a": "left"})
        assert renamed.columns() == ["left.x", "b.y"]

    def test_columns_and_relations(self):
        expr = expr_of("t.a + u.b + t.a")
        assert expr.columns() == ["t.a", "u.b"]
        assert expr.relations() == {"t", "u"}

    def test_contains_aggregate(self):
        assert expr_of("sum(x) + 1").contains_aggregate()
        assert not expr_of("x + 1").contains_aggregate()
