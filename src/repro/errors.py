"""Exception hierarchy for the ASPEN / SmartCIS reproduction.

All library errors derive from :class:`AspenError` so applications can
catch everything raised by this package with a single ``except`` clause.
Subsystems raise the most specific subclass available; error messages
include enough context (names, positions, values) to debug a failing
query without a stack trace.
"""

from __future__ import annotations


class AspenError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(AspenError):
    """A schema is malformed or two schemas are incompatible."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its declared :class:`~repro.data.types.DataType`."""


class UnknownFieldError(SchemaError):
    """A field name was referenced that does not exist in a schema."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available or [])
        hint = f"; available: {', '.join(self.available)}" if self.available else ""
        super().__init__(f"unknown field {name!r}{hint}")


class ParseError(AspenError):
    """Stream SQL text could not be tokenized or parsed.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")


class AnalysisError(AspenError):
    """A parsed query failed semantic analysis (binding, typing, scoping)."""


class CatalogError(AspenError):
    """A catalog lookup failed or a registration conflicts with an existing entry."""


class PlanError(AspenError):
    """A logical or physical plan is malformed or cannot be constructed."""


class OptimizerError(AspenError):
    """An optimizer could not produce a plan (e.g. no engine can execute a fragment)."""


class UnsupportedQueryError(OptimizerError):
    """A query (fragment) is outside the capabilities of every available engine."""


class ExecutionError(AspenError):
    """A runtime failure while executing a physical plan."""


class SensorNetworkError(AspenError):
    """A failure inside the simulated sensor network substrate."""


class RadioError(SensorNetworkError):
    """A radio-level failure (e.g. transmitting from a dead node)."""


class EnergyExhaustedError(SensorNetworkError):
    """A mote attempted an operation with a depleted battery."""


class WrapperError(AspenError):
    """A source wrapper failed to produce or translate data."""


class BuildingModelError(AspenError):
    """The building model is inconsistent (unknown room, disconnected graph, ...)."""


class RoutingError(BuildingModelError):
    """No route exists between the requested endpoints."""


class SimulationError(AspenError):
    """The discrete-event simulator was misused (e.g. scheduling in the past)."""


# ---------------------------------------------------------------------------
# Session API (repro.api): every failure a Session surfaces is one of these
# (or another AspenError subclass raised by the layer that failed).
# ---------------------------------------------------------------------------
class QueryError(AspenError):
    """A SQL statement failed to compile or route (lex/parse/analyze/plan).

    Attributes:
        line: 1-based source line of the failure (0 when unknown).
        column: 1-based source column of the failure (0 when unknown).
        sql: The statement text that failed.
    """

    def __init__(self, message: str, *, line: int = 0, column: int = 0, sql: str = ""):
        self.line = line
        self.column = column
        self.sql = sql
        super().__init__(message)


class SourceError(AspenError):
    """Attaching, detaching or feeding a session source failed."""


class SessionClosedError(AspenError):
    """An operation was attempted on a closed :class:`repro.api.Session`."""
