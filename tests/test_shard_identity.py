"""Sharded-vs-unsharded identity: the acceptance corpus for the pool.

Mirrors ``tests/test_fusion.py``'s A/B style: the same random pipelines
— partition-safe ones (fused chains, keyed windowed aggregation, keyed
DISTINCT) and partition-unsafe ones (ORDER BY / LIMIT, global
aggregates, DISTINCT without the key, ROWS windows) — are driven with
identical rows, timestamps and punctuation positions through a plain
:class:`StreamEngine` and through :class:`ShardedStreamEngine` pools of
N ∈ {1, 2, 4} shards. Sorted results must match exactly, and so must
every *punctuation segment* (the rows emitted between consecutive
watermarks — i.e. the window emissions a subscriber or ``latest_batch``
would observe).

Seed count: ``REPRO_SHARD_SEEDS`` (default 10; ``make check`` runs a
reduced count for the smoke gate).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.catalog import Catalog
from repro.data import DataType, Row, Schema
from repro.plan import PlanBuilder
from repro.stream.engine import StreamEngine
from repro.stream.procshard import ProcessShardEngine, usable_start_method
from repro.stream.sharded import ShardedQueryHandle, ShardedStreamEngine

SEEDS = int(os.environ.get("REPRO_SHARD_SEEDS", "10"))
#: Process pools pay a fork/recompile per worker per case; a smaller
#: slice of the same corpus keeps the suite fast without losing the
#: cross-mode comparison (every seed still runs in-process above).
PROCESS_SEEDS = min(SEEDS, 3)

READINGS = Schema.of(
    ("room", DataType.STRING),
    ("host", DataType.STRING),
    ("temp", DataType.FLOAT),
    ("load", DataType.FLOAT),
)
EVENTS = Schema.of(
    ("host", DataType.STRING),
    ("kind", DataType.STRING),
    ("level", DataType.FLOAT),
)
MACHINES_ROWS = [
    {"name": f"ws{i}", "room": f"lab{i % 3}", "cpu": float(i % 7)} for i in range(12)
]
MACHINES = Schema.of(
    ("name", DataType.STRING),
    ("room", DataType.STRING),
    ("cpu", DataType.FLOAT),
)

SAFE_TEMPLATES = [
    # Stateless fused chains (safe even round-robin).
    "select r.host, r.temp * 2.0 as t2 from Readings r "
    "where r.temp > {t0} and r.load >= {l0}",
    "select r.room, r.host, r.load from Readings r where r.load < {l1}",
    # Keyed windowed aggregation: GROUP BY covers the partition key.
    "select r.host, count(*) as n, sum(r.temp) as total from Readings r "
    "[range {w} seconds slide {w} seconds] where r.load >= 0.0 group by r.host",
    "select r.host, min(r.temp) as lo, max(r.temp) as hi, avg(r.load) as mean "
    "from Readings r [range {w2} seconds slide {s2} seconds] group by r.host",
    # Keyed DISTINCT.
    "select distinct r.host, r.room from Readings r where r.temp > {t1}",
]

UNSAFE_TEMPLATES = [
    "select r.room, r.temp from Readings r order by r.temp",
    "select r.host from Readings r where r.temp > {t0} limit 5",
    "select count(*) as n, avg(r.temp) as mean from Readings r "
    "[range {w} seconds slide {w} seconds]",
    "select r.room, count(*) as n from Readings r "
    "[range {w} seconds slide {w} seconds] group by r.room",
    "select distinct r.room from Readings r",
    "select r.host, r.temp from Readings r [rows 25] where r.load > {l0}",
]


def _fill(template: str, rng: random.Random) -> str:
    return template.format(
        t0=round(rng.uniform(5.0, 40.0), 1),
        t1=round(rng.uniform(10.0, 60.0), 1),
        l0=round(rng.uniform(0.0, 0.4), 2),
        l1=round(rng.uniform(0.4, 1.0), 2),
        w=rng.choice([10, 20, 40]),
        w2=rng.choice([20, 30]),
        s2=rng.choice([10, 20]),
    )


def _rows(count: int, rng: random.Random):
    """Random rows with NULLs and strictly increasing timestamps."""
    rooms = ["lab1", "lab2", "office3", None]
    rows, stamps = [], []
    clock = 0.0
    for i in range(count):
        rows.append(
            Row(
                READINGS,
                (
                    rooms[rng.randrange(4)],
                    f"ws{rng.randrange(16)}",
                    None if rng.random() < 0.08 else round(rng.uniform(-5, 80), 2),
                    round(rng.uniform(0, 1), 3),
                ),
                validate=False,
            )
        )
        clock += rng.uniform(0.05, 1.5)
        stamps.append(round(clock, 3))
    return rows, stamps


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream("Readings", READINGS, rate=10.0)
    return catalog


def _drive(engine, handles, rows, stamps, plan_rng: random.Random):
    """Push the feed in chunks (randomly per-element or batched, same
    split on every engine), punctuating between chunks; returns each
    handle's emissions per punctuation segment plus the final tail."""
    segments = [[] for _ in handles]
    marks = [0 for _ in handles]

    def snapshot():
        for index, handle in enumerate(handles):
            elements = handle.sink.elements
            fresh = elements[marks[index]:]
            marks[index] = len(elements)
            segments[index].append(
                sorted((e.timestamp, repr(e.row.values)) for e in fresh)
            )

    offset = 0
    while offset < len(rows):
        size = plan_rng.randint(5, 60)
        chunk_rows = rows[offset : offset + size]
        chunk_stamps = stamps[offset : offset + size]
        if plan_rng.random() < 0.5:
            engine.push_many("Readings", chunk_rows, chunk_stamps)
        else:
            for row, stamp in zip(chunk_rows, chunk_stamps):
                engine.push("Readings", row, stamp)
        offset += size
        engine.punctuate(chunk_stamps[-1])
        snapshot()
    engine.punctuate(stamps[-1] + 200.0)
    snapshot()
    return segments


def _run_unsharded(queries, rows, stamps, seed):
    catalog = _catalog()
    engine = StreamEngine(catalog)
    builder = PlanBuilder(catalog)
    handles = [engine.execute(builder.build_sql(sql)) for sql in queries]
    return _drive(engine, handles, rows, stamps, random.Random(seed * 31 + 7))


def _run_sharded(queries, rows, stamps, seed, shards, partition_by="host"):
    catalog = _catalog()
    engine = ShardedStreamEngine(catalog, shards=shards)
    if partition_by is not None:
        engine.set_partition_key("Readings", partition_by)
    builder = PlanBuilder(catalog)
    handles = [engine.execute(builder.build_sql(sql)) for sql in queries]
    segments = _drive(engine, handles, rows, stamps, random.Random(seed * 31 + 7))
    return segments, handles


class TestShardIdentityCorpus:
    """Random safe+unsafe pipelines: every shard count must reproduce
    the single engine's sorted per-segment emissions exactly."""

    @pytest.mark.parametrize("seed", range(SEEDS))
    def test_identity_corpus(self, seed):
        rng = random.Random(seed)
        queries = [
            _fill(rng.choice(SAFE_TEMPLATES), rng)
            for _ in range(rng.randint(1, 3))
        ] + [
            _fill(rng.choice(UNSAFE_TEMPLATES), rng)
            for _ in range(rng.randint(1, 2))
        ]
        rows, stamps = _rows(rng.randint(150, 400), rng)
        expected = _run_unsharded(queries, rows, stamps, seed)
        for shards in (1, 2, 4):
            got, handles = _run_sharded(queries, rows, stamps, seed, shards)
            assert got == expected, (
                f"seed={seed} shards={shards}: emissions diverged"
            )
            for handle in handles:
                assert isinstance(handle, ShardedQueryHandle)
                assert handle.analysis is not None

    @pytest.mark.parametrize("seed", range(min(SEEDS, 5)))
    def test_round_robin_identity(self, seed):
        """Without a declared key, stateless plans stay partitioned and
        the GROUP BY runs as a two-stage exchange over the round-robin
        feed; results still match exactly (ORDER BY falls back)."""
        rng = random.Random(1000 + seed)
        queries = [
            _fill(SAFE_TEMPLATES[0], rng),
            _fill(SAFE_TEMPLATES[2], rng),  # keyed agg -> exchange (no key)
            _fill(UNSAFE_TEMPLATES[0], rng),
        ]
        rows, stamps = _rows(200, rng)
        expected = _run_unsharded(queries, rows, stamps, seed)
        got, handles = _run_sharded(
            queries, rows, stamps, seed, shards=3, partition_by=None
        )
        assert got == expected
        assert handles[0].partitioned  # stateless chain stays parallel
        assert handles[1].exchanged  # unkeyed ingest: shuffle on GROUP BY
        assert not handles[2].partitioned  # ORDER BY still falls back


def _run_process(queries, rows, stamps, seed, shards, partition_by="host"):
    catalog = _catalog()
    engine = ProcessShardEngine(catalog, shards=shards)
    try:
        if partition_by is not None:
            engine.set_partition_key("Readings", partition_by)
        builder = PlanBuilder(catalog)
        handles = [
            engine.execute(builder.build_sql(sql), sql=sql) for sql in queries
        ]
        segments = _drive(engine, handles, rows, stamps, random.Random(seed * 31 + 7))
        return segments, handles
    finally:
        engine.shutdown()


@pytest.mark.skipif(
    usable_start_method() is None, reason="no multiprocessing start method"
)
class TestProcessWorkerIdentity:
    """workers='process' × shards ∈ {1, 2, 4}: the process pool must
    reproduce the in-process pool's per-punctuation-segment emissions
    exactly — same merge, same dedupe, same fallback routing — the
    only observable difference being which cores do the work."""

    @pytest.mark.parametrize("seed", range(PROCESS_SEEDS))
    def test_process_identity_corpus(self, seed):
        rng = random.Random(seed)
        queries = [
            _fill(rng.choice(SAFE_TEMPLATES), rng)
            for _ in range(rng.randint(1, 3))
        ] + [
            _fill(rng.choice(UNSAFE_TEMPLATES), rng)
            for _ in range(rng.randint(1, 2))
        ]
        rows, stamps = _rows(rng.randint(150, 400), rng)
        for shards in (1, 2, 4):
            expected, _ = _run_sharded(queries, rows, stamps, seed, shards)
            got, handles = _run_process(queries, rows, stamps, seed, shards)
            assert got == expected, (
                f"seed={seed} shards={shards}: process emissions diverged "
                "from the in-process pool"
            )
            for handle in handles:
                assert isinstance(handle, ShardedQueryHandle)
                assert handle.analysis is not None

    def test_safe_plans_partition_and_unsafe_fall_back(self):
        rng = random.Random(424)
        queries = [_fill(SAFE_TEMPLATES[2], rng), _fill(UNSAFE_TEMPLATES[0], rng)]
        rows, stamps = _rows(120, rng)
        _, handles = _run_process(queries, rows, stamps, 424, shards=2)
        assert handles[0].partitioned
        assert not handles[1].partitioned

    def test_plan_without_sql_text_falls_back(self):
        """Plans are never pickled: execute() without the SQL text runs
        the (safe) plan on the in-parent fallback engine instead."""
        catalog = _catalog()
        engine = ProcessShardEngine(catalog, shards=2)
        try:
            engine.set_partition_key("Readings", "host")
            sql = "select r.host, r.temp from Readings r where r.temp > 1.0"
            handle = engine.execute(PlanBuilder(catalog).build_sql(sql))
            assert not handle.partitioned
            assert handle.analysis.safe
        finally:
            engine.shutdown()


class TestShardedJoins:
    def _catalogs(self):
        catalog = Catalog()
        catalog.register_stream("Readings", READINGS, rate=10.0)
        catalog.register_stream("Events", EVENTS, rate=5.0)
        catalog.register_table("Machines", MACHINES, cardinality=len(MACHINES_ROWS))
        return catalog

    def _feed(self, seed: int):
        rng = random.Random(seed)
        feed = []  # (source, row, timestamp)
        clock = 0.0
        for i in range(300):
            clock += rng.uniform(0.05, 0.8)
            if rng.random() < 0.5:
                row = Row.raw(
                    READINGS,
                    (f"lab{i % 3}", f"ws{rng.randrange(8)}",
                     round(rng.uniform(0, 60), 2), round(rng.uniform(0, 1), 2)),
                )
                feed.append(("Readings", row, round(clock, 3)))
            else:
                row = Row.raw(
                    EVENTS,
                    (f"ws{rng.randrange(8)}", rng.choice(["warn", "err"]),
                     round(rng.uniform(0, 9), 2)),
                )
                feed.append(("Events", row, round(clock, 3)))
        return feed

    def _run(self, engine_factory, sql, seed):
        catalog = self._catalogs()
        engine = engine_factory(catalog)
        engine.load_table("Machines", MACHINES_ROWS)
        handle = engine.execute(PlanBuilder(catalog).build_sql(sql))
        for index, (source, row, stamp) in enumerate(self._feed(seed)):
            engine.push(source, row, stamp)
            if index % 40 == 39:
                engine.punctuate(stamp)
        engine.punctuate(10_000.0)
        return sorted(repr(r.values) for r in handle.results), handle

    @pytest.mark.parametrize("seed", range(3))
    def test_key_aligned_stream_join_is_partitioned_and_identical(self, seed):
        sql = (
            "select r.host, r.temp, e.kind from Readings r [range 20 seconds], "
            "Events e [range 20 seconds] "
            "where r.host = e.host and e.level > 1.0"
        )

        def sharded(catalog):
            pool = ShardedStreamEngine(catalog, shards=4)
            pool.set_partition_key("Readings", "host")
            pool.set_partition_key("Events", "host")
            return pool

        expected, _ = self._run(StreamEngine, sql, seed)
        got, handle = self._run(sharded, sql, seed)
        assert got == expected
        assert handle.partitioned, handle.analysis

    def test_stream_table_join_is_partitioned_and_identical(self):
        sql = (
            "select r.host, m.room, m.cpu from Readings r [range 30 seconds], "
            "Machines m where r.host = m.name and r.temp > 10.0"
        )

        def sharded(catalog):
            pool = ShardedStreamEngine(catalog, shards=3)
            pool.set_partition_key("Readings", "host")
            return pool

        expected, _ = self._run(StreamEngine, sql, 5)
        got, handle = self._run(sharded, sql, 5)
        assert got == expected
        assert handle.partitioned, handle.analysis

    def test_unaligned_stream_join_exchanges_and_is_identical(self):
        """The join key (room = kind) disagrees with the declared
        partition key (host), so the pool shuffles both inputs on the
        join key mid-plan instead of falling back — identical output."""
        sql = (
            "select r.host, e.kind from Readings r [range 20 seconds], "
            "Events e [range 20 seconds] where r.room = e.kind"
        )

        def sharded(catalog):
            pool = ShardedStreamEngine(catalog, shards=4)
            pool.set_partition_key("Readings", "host")
            pool.set_partition_key("Events", "host")
            return pool

        expected, _ = self._run(StreamEngine, sql, 9)
        got, handle = self._run(sharded, sql, 9)
        assert got == expected
        assert handle.exchanged

    def test_unaligned_join_with_matches_is_identical(self):
        """Same shape but with a predicate that actually produces pairs
        (host = host, partitioned by room/kind): every shard count must
        reproduce the single engine's rows through the shuffle."""
        sql = (
            "select r.host, r.temp, e.kind from Readings r [range 30 seconds], "
            "Events e [range 10 seconds] where r.host = e.host and e.level > 2.0"
        )

        expected, _ = self._run(StreamEngine, sql, 11)
        assert expected  # the corpus would be vacuous without matches
        for shards in (2, 3):

            def sharded(catalog, shards=shards):
                pool = ShardedStreamEngine(catalog, shards=shards)
                pool.set_partition_key("Readings", "room")
                pool.set_partition_key("Events", "kind")
                return pool

            got, handle = self._run(sharded, sql, 11)
            assert got == expected
            assert handle.exchanged
