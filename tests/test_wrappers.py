"""Tests for wrappers: machines, PDUs, web sources, punctuation."""

import pytest

from repro.errors import WrapperError
from repro.wrappers import (
    CalendarEvent,
    CalendarService,
    CalendarWrapper,
    CallbackWrapper,
    IDLE_WATTS,
    MachineSpec,
    MachineStateWrapper,
    PduWrapper,
    PowerDistributionUnit,
    Punctuator,
    SimulatedMachine,
    WeatherService,
    WeatherWrapper,
    parse_status_page,
)


@pytest.fixture
def machine(simulator):
    return SimulatedMachine(MachineSpec("ws1", "lab1", "d1", "Fedora"), simulator, seed=1)


class TestSimulatedMachine:
    def test_idle_machine_is_quiet(self, machine, simulator):
        simulator.run_until(60.0)
        state = machine.observe()
        assert state["users"] == 0
        assert state["cpu"] < 0.2

    def test_occupancy_raises_load(self, machine, simulator):
        machine.set_occupied(True)
        simulator.run_until(120.0)
        busy = machine.observe()
        machine.set_occupied(False)
        simulator.run_until(400.0)
        idle = machine.observe()
        assert busy["users"] >= 1
        assert busy["cpu"] > idle["cpu"]

    def test_power_tracks_cpu(self, machine, simulator):
        machine.set_occupied(True)
        simulator.run_until(120.0)
        assert machine.power_watts() > IDLE_WATTS

    def test_temperature_tracks_cpu(self, machine, simulator):
        cool = machine.temperature_c()
        machine.fail()
        simulator.run_until(60.0)
        assert machine.temperature_c() > cool + 10

    def test_failure_pegs_cpu(self, machine, simulator):
        machine.fail()
        simulator.run_until(30.0)
        assert machine.observe()["cpu"] == 1.0
        machine.repair()
        simulator.run_until(300.0)
        assert machine.observe()["cpu"] < 0.9

    def test_server_has_background_load(self, simulator):
        server = SimulatedMachine(
            MachineSpec("srv", "mr", "r1", "Apache", is_server=True), simulator, seed=2
        )
        simulator.run_until(120.0)
        state = server.observe()
        assert state["users"] >= 1 and state["jobs"] >= 0

    def test_deterministic_given_seed(self):
        from repro.runtime import Simulator

        readings = []
        for _ in range(2):
            sim = Simulator(9)
            m = SimulatedMachine(MachineSpec("x", "r", "d", "s"), sim, seed=5)
            m.set_occupied(True)
            sim.run_until(100.0)
            readings.append(m.observe())
        assert readings[0] == readings[1]


class TestPdu:
    def test_page_renders_and_parses(self, machine):
        pdu = PowerDistributionUnit("pdu1")
        pdu.plug(1, machine)
        page = pdu.render_status_page()
        records = parse_status_page(page)
        assert len(records) == 1
        assert records[0]["host"] == "ws1"
        assert records[0]["watts"] >= IDLE_WATTS * 0.9

    def test_duplicate_outlet_rejected(self, machine):
        pdu = PowerDistributionUnit("pdu1")
        pdu.plug(1, machine)
        with pytest.raises(WrapperError):
            pdu.plug(1, machine)

    def test_malformed_page_rejected(self):
        with pytest.raises(WrapperError, match="outlet table"):
            parse_status_page("<html><body>under maintenance</body></html>")

    def test_wrapper_emits_power_tuples(self, catalog, engine, simulator, machine, builder):
        catalog.register_stream(
            "Power",
            __import__("repro.data", fromlist=["Schema"]).Schema.of(
                ("pdu", __import__("repro.data", fromlist=["DataType"]).DataType.STRING),
                ("outlet", __import__("repro.data", fromlist=["DataType"]).DataType.INT),
                ("host", __import__("repro.data", fromlist=["DataType"]).DataType.STRING),
                ("watts", __import__("repro.data", fromlist=["DataType"]).DataType.FLOAT),
            ),
        )
        handle = engine.execute(builder.build_sql("select p.host, p.watts from Power p"))
        pdu = PowerDistributionUnit("pdu1")
        pdu.plug(1, machine)
        wrapper = PduWrapper(engine, simulator, pdu, period=10.0)
        wrapper.start()
        simulator.run_until(31.0)
        assert wrapper.polls == 3
        assert len(handle.results) == 3
        assert handle.results[0]["p.host"] == "ws1"


class TestWebWrappers:
    def test_weather_tuples(self, catalog, engine, simulator, builder):
        from repro.data import DataType, Schema

        catalog.register_stream(
            "Weather",
            Schema.of(
                ("observed_at", DataType.FLOAT),
                ("outdoor_temp_c", DataType.FLOAT),
                ("condition", DataType.STRING),
            ),
        )
        handle = engine.execute(
            builder.build_sql("select w.outdoor_temp_c from Weather w")
        )
        wrapper = WeatherWrapper(engine, simulator, WeatherService(simulator), period=300.0)
        wrapper.start()
        simulator.run_until(601.0)
        assert len(handle.results) == 2

    def test_calendar_filters_to_horizon(self, simulator):
        service = CalendarService(
            [
                CalendarEvent("standup", "lab1", start=100.0, duration=900.0),
                CalendarEvent("later", "lab2", start=90000.0, duration=900.0),
            ]
        )
        import json

        payload = json.loads(service.fetch(now=0.0, horizon=3600.0))
        assert [e["title"] for e in payload["events"]] == ["standup"]

    def test_calendar_includes_in_progress_event(self):
        service = CalendarService(
            [CalendarEvent("running", "lab1", start=0.0, duration=1000.0)]
        )
        import json

        payload = json.loads(service.fetch(now=500.0))
        assert payload["events"]


class TestWrapperFramework:
    def test_period_must_be_positive(self, engine, simulator):
        with pytest.raises(WrapperError):
            CallbackWrapper("Temps", engine, simulator, 0.0, lambda now: [])

    def test_double_start_rejected(self, catalog, engine, simulator):
        wrapper = CallbackWrapper("Temps", engine, simulator, 5.0, lambda now: [])
        wrapper.start()
        with pytest.raises(WrapperError):
            wrapper.start()

    def test_stop_halts_polling(self, catalog, engine, simulator):
        wrapper = CallbackWrapper(
            "Temps", engine, simulator, 5.0, lambda now: [{"room": "x", "temp": now}]
        )
        wrapper.start()
        simulator.run_until(11.0)
        wrapper.stop()
        simulator.run_until(60.0)
        assert wrapper.polls == 2
        assert not wrapper.running

    def test_poll_failure_translated(self, catalog, engine, simulator):
        def boom(now):
            raise ValueError("scrape exploded")

        wrapper = CallbackWrapper("Temps", engine, simulator, 5.0, boom)
        wrapper.start()
        with pytest.raises(WrapperError, match="scrape exploded"):
            simulator.run_until(6.0)

    def test_punctuator_advances_watermarks(self, catalog, engine, simulator, builder):
        handle = engine.execute(
            builder.build_sql("select t.room, count(*) as n from Temps t group by t.room")
        )
        engine.push("Temps", {"room": "a", "temp": 1.0}, 0.5)
        punctuator = Punctuator(engine, simulator, period=1.0)
        punctuator.start()
        simulator.run_until(2.0)
        assert handle.results  # running aggregate emitted on punctuation
        punctuator.stop()
