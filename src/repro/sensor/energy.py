"""Mote energy model.

Constants follow the usual IRIS / iMote2-class figures used in sensor
network simulators: radio transmission dominates, reception costs
nearly as much, sensing and CPU are comparatively cheap. The absolute
numbers matter less than their *ratios* — the in-network join optimizer
trades extra local computation for fewer radio messages, which only
makes sense under radio-dominated budgets (paper §1: computation pushed
to where it is appropriate "taking into account capabilities, battery
life, and network bandwidth").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EnergyExhaustedError


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy costs in millijoules.

    Attributes:
        tx_per_byte: Radio transmit cost per payload byte.
        rx_per_byte: Radio receive cost per payload byte.
        tx_fixed: Fixed per-message transmit cost (preamble, turnaround).
        rx_fixed: Fixed per-message receive cost.
        sample: One sensor acquisition (ADC read).
        cpu_per_tuple: Evaluating a predicate / combining one tuple.
        idle_per_second: Baseline drain while duty-cycled.
    """

    tx_per_byte: float = 0.0035
    rx_per_byte: float = 0.0018
    tx_fixed: float = 0.06
    rx_fixed: float = 0.045
    sample: float = 0.02
    cpu_per_tuple: float = 0.0005
    idle_per_second: float = 0.008

    def tx_cost(self, payload_bytes: int) -> float:
        """Energy to transmit one message with ``payload_bytes`` of payload."""
        return self.tx_fixed + self.tx_per_byte * payload_bytes

    def rx_cost(self, payload_bytes: int) -> float:
        """Energy to receive one message."""
        return self.rx_fixed + self.rx_per_byte * payload_bytes


#: Default model shared by the whole network unless overridden per mote.
DEFAULT_ENERGY_MODEL = EnergyModel()


class Battery:
    """A finite energy store with spend tracking by category."""

    def __init__(self, capacity_mj: float = 10_000_000.0):
        if capacity_mj <= 0:
            raise ValueError("battery capacity must be positive")
        self.capacity_mj = capacity_mj
        self.remaining_mj = capacity_mj
        self.spent_by_category: dict[str, float] = {}

    @property
    def depleted(self) -> bool:
        return self.remaining_mj <= 0

    @property
    def fraction_remaining(self) -> float:
        return max(self.remaining_mj, 0.0) / self.capacity_mj

    def spend(self, amount_mj: float, category: str) -> None:
        """Consume energy; raises :class:`EnergyExhaustedError` once empty.

        The raising operation still records its spend so post-mortem
        accounting adds up.
        """
        if amount_mj < 0:
            raise ValueError("cannot spend negative energy")
        if self.depleted:
            raise EnergyExhaustedError("battery is depleted")
        self.remaining_mj -= amount_mj
        self.spent_by_category[category] = (
            self.spent_by_category.get(category, 0.0) + amount_mj
        )

    def spent(self, category: str | None = None) -> float:
        """Total energy spent, optionally for one category."""
        if category is None:
            return sum(self.spent_by_category.values())
        return self.spent_by_category.get(category, 0.0)
