"""Unit tests for the Stream SQL parser."""

import pytest

from repro.data.windows import WindowKind
from repro.errors import ParseError
from repro.sql import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    CreateView,
    Literal,
    RecursiveQuery,
    SelectQuery,
    UnaryOp,
    parse,
    parse_script,
    parse_select,
)


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse_select("select a, b from T")
        assert [i.expr.render() for i in stmt.items] == ["a", "b"]
        assert stmt.tables[0].name == "T"

    def test_star(self):
        stmt = parse_select("select * from T")
        assert stmt.is_star

    def test_aliases(self):
        stmt = parse_select("select a as x, b y from T t1, U as t2")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.tables[0].alias == "t1"
        assert stmt.tables[1].alias == "t2"

    def test_qualified_columns(self):
        stmt = parse_select("select t.a from T t")
        assert isinstance(stmt.items[0].expr, ColumnRef)
        assert stmt.items[0].expr.name == "t.a"

    def test_order_limit_distinct(self):
        stmt = parse_select(
            "select distinct a from T order by a desc, b asc limit 5"
        )
        assert stmt.distinct
        assert stmt.limit == 5
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_group_by_having(self):
        stmt = parse_select(
            "select room, count(*) from T group by room having count(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.is_aggregate

    def test_trailing_semicolon_ok(self):
        parse("select a from T;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("select a from T zzz qqq")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("select a")


class TestWindows:
    def test_window_before_alias(self):
        stmt = parse_select("select * from T [RANGE 30 SECONDS] t")
        window = stmt.tables[0].window
        assert window.kind is WindowKind.RANGE and window.size == 30

    def test_window_after_alias(self):
        stmt = parse_select("select * from T t [RANGE 30 SECONDS SLIDE 10 SECONDS]")
        window = stmt.tables[0].window
        assert window.size == 30 and window.slide == 10

    def test_rows_window(self):
        stmt = parse_select("select * from T [ROWS 100]")
        assert stmt.tables[0].window.kind is WindowKind.ROWS

    def test_now_and_unbounded(self):
        assert parse_select("select * from T [NOW]").tables[0].window.kind is WindowKind.NOW
        assert (
            parse_select("select * from T [UNBOUNDED]").tables[0].window.kind
            is WindowKind.UNBOUNDED
        )

    def test_bad_window_kind(self):
        with pytest.raises(ParseError):
            parse("select * from T [SOMETIMES 3]")


class TestExpressions:
    def test_caret_is_and(self):
        stmt = parse_select("select a from T where a = 1 ^ b = 2")
        assert isinstance(stmt.where, BinaryOp) and stmt.where.op == "AND"

    def test_precedence_or_weaker_than_and(self):
        stmt = parse_select("select a from T where a = 1 or b = 2 and c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse_select("select a + b * c from T")
        expr = stmt.items[0].expr
        assert expr.op == "+" and expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse_select("select (a + b) * c from T")
        assert stmt.items[0].expr.op == "*"

    def test_not_like_is_null(self):
        stmt = parse_select(
            "select a from T where a not like '%x%' and b is not null and c is null"
        )
        rendered = stmt.where.render()
        assert "NOT LIKE" in rendered and "IS NOT NULL" in rendered and "IS NULL" in rendered

    def test_unary_minus(self):
        stmt = parse_select("select -a from T")
        assert isinstance(stmt.items[0].expr, UnaryOp)

    def test_literals(self):
        stmt = parse_select("select 1, 2.5, 'x', true, false, null from T")
        values = [item.expr.value for item in stmt.items]
        assert values == [1, 2.5, "x", True, False, None]

    def test_count_star_and_distinct(self):
        stmt = parse_select("select count(*), count(distinct a), sum(b) from T")
        calls = [item.expr for item in stmt.items]
        assert calls[0].argument is None
        assert calls[1].distinct
        assert isinstance(calls[2], AggregateCall)

    def test_scalar_function(self):
        stmt = parse_select("select abs(a), coalesce(b, 0) from T")
        assert stmt.items[0].expr.name == "ABS"


class TestStatements:
    def test_create_view(self):
        stmt = parse(
            "create view V as (select ss.room from SeatSensors ss where ss.status = 'free')"
        )
        assert isinstance(stmt, CreateView) and stmt.name == "V"

    def test_create_view_without_parens(self):
        stmt = parse("create view V as select a from T")
        assert isinstance(stmt, CreateView)

    def test_recursive(self):
        stmt = parse(
            """
            WITH RECURSIVE tc(src, dst) AS (
              SELECT e.src, e.dst FROM Edges e
              UNION
              SELECT t.src, e.dst FROM tc t, Edges e WHERE t.dst = e.src
            ) SELECT src, dst FROM tc
            """
        )
        assert isinstance(stmt, RecursiveQuery)
        assert stmt.columns == ("src", "dst")
        assert not stmt.union_all

    def test_recursive_union_all(self):
        stmt = parse(
            """
            WITH RECURSIVE r(x) AS (
              SELECT a FROM T UNION ALL SELECT r.x FROM r, T WHERE r.x = T.a
            ) SELECT x FROM r
            """
        )
        assert stmt.union_all

    def test_output_to_display(self):
        stmt = parse_select(
            "select a from T output to display 'lobby' every 5 seconds"
        )
        assert stmt.output.display == "lobby"
        assert stmt.output.every == 5.0

    def test_output_without_every(self):
        stmt = parse_select("select a from T output to display 'lobby'")
        assert stmt.output.every is None

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse("delete from T")

    def test_parse_script_splits_on_semicolons(self):
        statements = parse_script(
            "create view V as select a from T; select a from T; -- done\n"
        )
        assert len(statements) == 2

    def test_parse_script_respects_strings(self):
        statements = parse_script("select 'a;b' from T")
        assert len(statements) == 1

    def test_parse_select_rejects_view(self):
        with pytest.raises(ParseError):
            parse_select("create view V as select a from T")


class TestRenderRoundtrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, b AS x FROM T",
            "SELECT DISTINCT a FROM T t WHERE (a = 1) ORDER BY a LIMIT 3",
            "SELECT COUNT(*) FROM T [RANGE 30 SECONDS] GROUP BY room",
            "SELECT a FROM T WHERE ((a LIKE '%x%') AND (b > 2))",
        ],
    )
    def test_render_reparses_to_same_render(self, sql):
        once = parse(sql)
        again = parse(once.render())
        assert once.render() == again.render()

    def test_figure1_query_parses(self):
        from repro.smartcis.queries import FREE_MACHINE_QUERY, FREE_MACHINE_QUERY_INLINE

        assert isinstance(parse(FREE_MACHINE_QUERY), SelectQuery)
        assert isinstance(parse(FREE_MACHINE_QUERY_INLINE), SelectQuery)
