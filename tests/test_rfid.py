"""Tests for RFID beacons, detection and localisation."""

import pytest

from repro.runtime import Simulator
from repro.sensor import (
    Beacon,
    Localizer,
    Mote,
    MoteRole,
    Position,
    RFIDService,
    SensorNetwork,
)


@pytest.fixture
def hallway(simulator):
    """Base plus three hallway detectors at x = 100, 200, 300."""
    net = SensorNetwork(simulator)
    net.add_basestation(Position(200, 0), radio_range=150)
    for i, x in enumerate((100, 200, 300), start=1):
        net.add_mote(Mote(i, Position(x, 0), MoteRole.HALLWAY, radio_range=150))
    net.rebuild_topology()
    return net


class TestDetection:
    def test_only_detectors_in_range_hear(self, hallway, simulator):
        sightings = []
        service = RFIDService(hallway, lambda v, t: sightings.append(v))
        position = Position(110, 0)
        service.add_beacon(Beacon(7, lambda: position, period=2.0, tx_range=40))
        simulator.run_for(2.5)
        detectors = {s["detector"] for s in sightings}
        assert detectors == {1}  # only x=100 within 40 ft of x=110

    def test_multiple_detectors_rank_by_rssi(self, hallway, simulator):
        sightings = []
        service = RFIDService(hallway, lambda v, t: sightings.append(v))
        position = Position(180, 0)  # 80 ft from det1, 20 ft from det2
        service.add_beacon(Beacon(7, lambda: position, period=2.0, tx_range=100))
        simulator.run_for(2.5)
        by_detector = {s["detector"]: s["rssi"] for s in sightings}
        assert by_detector[2] > by_detector[1]

    def test_moving_beacon_changes_detector(self, hallway, simulator):
        sightings = []
        service = RFIDService(hallway, lambda v, t: sightings.append((v, t)))
        state = {"pos": Position(100, 0)}
        service.add_beacon(Beacon(7, lambda: state["pos"], period=2.0, tx_range=30))
        simulator.run_for(2.5)
        state["pos"] = Position(300, 0)
        simulator.run_for(2.0)
        detectors = [v["detector"] for v, _ in sightings]
        assert detectors[0] == 1 and detectors[-1] == 3

    def test_sightings_consume_network_messages(self, hallway, simulator):
        service = RFIDService(hallway, lambda v, t: None)
        service.add_beacon(Beacon(7, lambda: Position(100, 0), period=2.0, tx_range=30))
        before = hallway.stats.transmissions
        simulator.run_for(2.5)
        assert hallway.stats.transmissions > before

    def test_stop_halts_transmissions(self, hallway, simulator):
        service = RFIDService(hallway, lambda v, t: None)
        beacon = service.add_beacon(
            Beacon(7, lambda: Position(100, 0), period=2.0, tx_range=30)
        )
        simulator.run_for(2.5)
        count = beacon.transmissions
        service.stop()
        simulator.run_for(10.0)
        assert beacon.transmissions == count


class TestLocalizer:
    POSITIONS = {1: Position(100, 0), 2: Position(200, 0), 3: Position(300, 0)}

    def test_strongest_recent_detector_wins(self):
        localizer = Localizer(self.POSITIONS, horizon=5.0)
        localizer.observe({"detector": 1, "beacon": 7, "rssi": -60.0}, time=1.0)
        localizer.observe({"detector": 2, "beacon": 7, "rssi": -40.0}, time=1.5)
        assert localizer.locate(7, now=2.0) == Position(200, 0)
        assert localizer.strongest_detector(7, now=2.0) == 2

    def test_stale_sightings_expire(self):
        localizer = Localizer(self.POSITIONS, horizon=5.0)
        localizer.observe({"detector": 1, "beacon": 7, "rssi": -40.0}, time=1.0)
        assert localizer.locate(7, now=10.0) is None

    def test_unseen_beacon(self):
        localizer = Localizer(self.POSITIONS)
        assert localizer.locate(99, now=0.0) is None
        assert localizer.strongest_detector(99, now=0.0) is None

    def test_per_beacon_isolation(self):
        localizer = Localizer(self.POSITIONS)
        localizer.observe({"detector": 1, "beacon": 7, "rssi": -40.0}, time=1.0)
        localizer.observe({"detector": 3, "beacon": 8, "rssi": -40.0}, time=1.0)
        assert localizer.locate(7, now=2.0) == Position(100, 0)
        assert localizer.locate(8, now=2.0) == Position(300, 0)

    def test_ties_broken_by_recency(self):
        localizer = Localizer(self.POSITIONS)
        localizer.observe({"detector": 1, "beacon": 7, "rssi": -40.0}, time=1.0)
        localizer.observe({"detector": 2, "beacon": 7, "rssi": -40.0}, time=2.0)
        assert localizer.strongest_detector(7, now=3.0) == 2


class TestEndToEndLocalisation:
    def test_detect_then_locate(self, hallway, simulator):
        localizer = Localizer(TestLocalizer.POSITIONS, horizon=6.0)
        service = RFIDService(hallway, lambda v, t: localizer.observe(v, t))
        service.add_beacon(Beacon(7, lambda: Position(195, 0), period=2.0, tx_range=50))
        simulator.run_for(3.0)
        assert localizer.locate(7, simulator.now) == Position(200, 0)
