"""Energy and network-lifetime behaviour of in-network strategies.

Paper §1: computation is pushed to where it is appropriate "taking into
account capabilities, battery life, and network bandwidth". These tests
check that the energy model makes the optimizer's preferences *actually
pay off in battery terms* in simulation, not just in the cost model.
"""

import pytest

from repro.data import DataType, Schema
from repro.runtime import Simulator
from repro.sensor import (
    JoinPair,
    JoinStrategy,
    Mote,
    MoteRole,
    Position,
    SensorEngine,
    SensorNetwork,
    SensorRelation,
)
from repro.sql.expressions import BinaryOp, ColumnRef, Literal


def line_world(seed=5, battery_mj=600.0):
    """A 5-mote line with tiny batteries so depletion is observable."""
    from repro.sensor.energy import Battery

    simulator = Simulator(seed)
    network = SensorNetwork(simulator)
    network.add_basestation(Position(0, 0))
    for i in range(1, 6):
        mote = Mote(
            i, Position(i * 80.0, 0), MoteRole.WORKSTATION,
            radio_range=100.0, battery=Battery(battery_mj),
        )
        mote.attach_sensor("temp", lambda i=i: 20.0 + i)
        network.add_mote(mote)
    network.rebuild_topology()
    engine = SensorEngine(network)
    engine.register_relation(
        SensorRelation(
            "Temps",
            Schema.of(("node", DataType.INT), ("temp", DataType.FLOAT)),
            [1, 2, 3, 4, 5],
            lambda m: {"node": m.mote_id, "temp": m.sample("temp")},
            period=10.0,
        )
    )
    return simulator, network, engine


class TestEnergyAccounting:
    def test_relays_spend_more_than_leaves(self):
        simulator, network, engine = line_world()
        engine.deploy_collection("Temps")
        simulator.run_until(51.0)
        # Mote 1 relays everyone's traffic; mote 5 only its own.
        assert network.motes[1].battery.spent() > network.motes[5].battery.spent()
        assert network.motes[1].battery.spent("rx") > 0

    def test_aggregation_preserves_battery_vs_collection(self):
        sim_a, net_a, eng_a = line_world()
        eng_a.deploy_aggregation("Temps", "temp", "AVG")
        sim_a.run_until(101.0)

        sim_c, net_c, eng_c = line_world()
        eng_c.deploy_collection("Temps")
        sim_c.run_until(101.0)

        assert net_a.total_energy_spent() < net_c.total_energy_spent()
        # The lifetime proxy (worst battery) is also better for TAG.
        assert net_a.min_battery_fraction() >= net_c.min_battery_fraction()

    def test_local_join_extends_bottleneck_lifetime(self):
        """With a selective predicate, join-at-sensor keeps the relay
        motes alive longer than ship-everything-to-base."""
        predicate = BinaryOp("<", ColumnRef("r.temp"), Literal(0.0))  # nothing passes

        def run(strategy):
            simulator, network, engine = line_world()
            engine.deploy_join(
                "Temps", "Temps",
                [JoinPair(4, 5, strategy), JoinPair(2, 3, strategy)],
                predicate, target_name="j", left_prefix="l", right_prefix="r",
            )
            simulator.run_until(201.0)
            return network.min_battery_fraction()

        assert run(JoinStrategy.AT_LEFT) > run(JoinStrategy.AT_BASE)

    def test_relay_depletion_partitions_the_network(self):
        """Small batteries: the relay motes near the base carry everyone's
        traffic and die first, after which reporting ceases even though
        the far mote still has charge — the classic energy-hole effect
        (and the reason the optimizer prices radio messages so high)."""
        simulator, network, engine = line_world(battery_mj=20.0)
        engine.deploy_collection("Temps")
        delivered = []
        engine.on_result = lambda n, v, t: delivered.append((v["node"], t))
        simulator.run_until(501.0)
        nodes_seen = {node for node, _ in delivered}
        assert nodes_seen == {1, 2, 3, 4, 5}  # everyone reported early on
        last_delivery = max(t for _, t in delivered)
        assert last_delivery < 400.0  # the network went dark mid-run
        # The bottleneck relay is dead; the leaf outlived its own uplink.
        assert not network.motes[1].alive
        assert network.motes[5].battery.fraction_remaining > 0
        # Traffic after the partition is dropped, not silently lost.
        assert network.stats.drops > 0

    def test_energy_categories_sum_to_total(self):
        simulator, network, engine = line_world()
        engine.deploy_collection("Temps")
        simulator.run_until(31.0)
        for mote in network.motes.values():
            total = mote.battery.spent()
            by_category = sum(mote.battery.spent_by_category.values())
            assert total == pytest.approx(by_category)


class TestMediatedFacade:
    def test_app_level_mediated_query(self):
        from repro import SmartCIS

        app = SmartCIS(seed=12, lab_count=2, desks_per_lab=2)
        app.start()
        app.register_mapping(
            "AllTemps",
            [
                "select wt.room as location, wt.temp_c as celsius "
                "from WorkstationTemps wt",
            ],
        )
        execution = app.execute_mediated(
            "select t.location, t.celsius from AllTemps t where t.celsius > 0"
        )
        app.simulator.run_for(25.0)
        assert execution.results
        assert {r["t.location"] for r in execution.results} <= set(app.building.rooms)
        execution.stop()

    def test_mediated_union_of_two_feeds(self):
        from repro import SmartCIS

        app = SmartCIS(seed=12, lab_count=2, desks_per_lab=2)
        app.start()
        app.register_mapping(
            "Activity",
            [
                "select ms.host as who, ms.cpu as level from MachineState ms",
                "select p.host as who, p.watts / 200 as level from Power p",
            ],
        )
        execution = app.execute_mediated("select a.who, a.level from Activity a")
        app.simulator.run_for(25.0)
        assert len(execution.variants) == 2
        assert all(handle.results() for handle in execution.variants)
