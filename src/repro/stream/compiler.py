"""Compile logical plans into stream-operator pipelines.

The compiler walks a logical plan bottom-up, instantiating the physical
operator for each node and wiring downstream links. Scan leaves become
*ports*: named entry points the engine connects to source feeds.

Operator fusion: with ``fuse=True`` (the default), maximal runs of
adjacent Select/Project nodes — Filter/Project, Filter/Filter,
Project/Project, and longer mixed chains — lower to a single
:class:`~repro.stream.operators.FusedOp` whose generated closure runs
the whole chain per element (see
:func:`~repro.sql.compiled.compile_fused`). ``fuse=False`` keeps one
physical operator per logical node as the A/B baseline.

Window inference: a Scan's explicit window wins; otherwise streams get
the engine's default window and stored tables get UNBOUNDED. A join
side's window is the widest RANGE window beneath it (a join of windowed
streams stays windowed; a join against a table side is unbounded on that
side only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.catalog import SourceKind
from repro.data.streams import StreamConsumer, StreamElement, push_all
from repro.data.windows import WindowKind, WindowSpec
from repro.errors import PlanError
from repro.plan.exchange import ExchangeSource, MergeAggregate, PartialAggregate
from repro.plan.logical import (
    Aggregate,
    CteRef,
    Distinct,
    Join,
    Limit,
    LogicalOp,
    OrderBy,
    Output,
    Project,
    RemoteSource,
    Scan,
    Select,
)
from repro.sql.expressions import is_equijoin_conjunct, split_conjuncts
from repro.stream.operators import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    FusedOp,
    LimitOp,
    MergeAggregateOp,
    Operator,
    OrderByOp,
    OutputOp,
    PartialAggregateOp,
    ProjectOp,
    SymmetricHashJoin,
)

#: Default window applied to stream scans that carry no window clause.
DEFAULT_STREAM_WINDOW = WindowSpec.range(60.0)


@dataclass
class ScanPort:
    """A compiled source leaf: where the engine feeds source elements.

    ``scan`` is None for :class:`~repro.plan.logical.RemoteSource` leaves
    (streams arriving from another engine, fed by name).
    """

    source_name: str
    binding: str
    consumer: StreamConsumer
    scan: Scan | None = None
    #: True for :class:`~repro.plan.exchange.ExchangeSource` ports.
    #: Exchange feeds are punctuated explicitly by the pool's shuffle
    #: barrier, never by the engine's broadcast punctuate.
    exchange: bool = False


@dataclass
class CompiledPlan:
    """The result of compiling one logical plan.

    Attributes:
        root: The plan that was compiled.
        ports: Scan entry points, in left-to-right plan order.
        operators: Every instantiated operator (for introspection/stats).
    """

    root: LogicalOp
    ports: list[ScanPort] = field(default_factory=list)
    operators: list[Operator] = field(default_factory=list)

    def ports_for(self, source_name: str) -> list[ScanPort]:
        """All ports fed by one source (a source may be scanned twice)."""
        return [p for p in self.ports if p.source_name.lower() == source_name.lower()]

    @property
    def stats(self) -> dict[str, int]:
        """Total rows in/out per operator class."""
        out: dict[str, int] = {}
        for op in self.operators:
            name = type(op).__name__
            out[f"{name}.in"] = out.get(f"{name}.in", 0) + op.rows_in
            out[f"{name}.out"] = out.get(f"{name}.out", 0) + op.rows_out
        return out


class _ReschemaConsumer:
    """Rebases incoming rows positionally onto a fixed schema.

    ``with_schema`` reuses the value tuple untouched, so the
    per-element cost is one arity check plus one allocation per port.
    """

    def __init__(self, schema, downstream: StreamConsumer):
        self._schema = schema
        self._downstream = downstream

    def push(self, item) -> None:
        # Identity fast path: shared-chain tees feed many shims whose
        # target schema is often the very object the chain emitted.
        if isinstance(item, StreamElement) and item.row.schema is not self._schema:
            item = StreamElement(
                item.row.with_schema(self._schema), item.timestamp, item.source
            )
        self._downstream.push(item)

    def push_batch(self, items: list) -> None:
        schema = self._schema
        rebased = [
            StreamElement(item.row.with_schema(schema), item.timestamp, item.source)
            if isinstance(item, StreamElement) and item.row.schema is not schema
            else item
            for item in items
        ]
        push_all(self._downstream, rebased)


class _RenamingConsumer(_ReschemaConsumer):
    """Rebases incoming rows onto the scan's qualified schema.

    Sources emit rows under their catalog schema (bare names); plans
    reference ``binding.column``. Positional re-schema is free — values
    are untouched.
    """

    def __init__(self, scan: Scan, downstream: StreamConsumer):
        super().__init__(scan.schema, downstream)


class PlanCompiler:
    """Compiles logical plans to operator pipelines."""

    def __init__(
        self,
        deliver: Callable[[str, StreamElement], None] | None = None,
        default_window: WindowSpec = DEFAULT_STREAM_WINDOW,
        compiled_exprs: bool = True,
        fuse: bool = True,
    ):
        self._deliver = deliver or (lambda display, element: None)
        self._default_window = default_window
        # When True (default), operators evaluate expressions via the
        # schema-bound compiled closures of repro.sql.compiled; False
        # keeps the tree-walking interpreter (the A/B baseline used by
        # benchmarks/bench_expr_compile.py).
        self._compiled_exprs = compiled_exprs
        # When True (default), maximal runs of adjacent Select/Project
        # nodes lower to one FusedOp running the whole chain as a single
        # generated closure, and scan ports feeding a fully positional
        # chain skip the renaming shim. False keeps one operator per
        # node and a renaming port per scan — the pre-fusion pipeline,
        # kept as the A/B baseline for benchmarks/bench_fusion.py and
        # the fused-vs-unfused identity tests. Fusion requires the
        # compiled expression path (the fused closure is schema-bound).
        self._fuse = fuse and compiled_exprs

    def _input_schema(self, child: LogicalOp):
        return child.schema if self._compiled_exprs else None

    def compile(self, plan: LogicalOp, sink: StreamConsumer) -> CompiledPlan:
        """Compile ``plan`` so results flow into ``sink``."""
        compiled = CompiledPlan(root=plan)
        self._compile_node(plan, sink, compiled)
        return compiled

    # ------------------------------------------------------------------
    def _compile_node(
        self, node: LogicalOp, downstream: StreamConsumer, compiled: CompiledPlan
    ) -> StreamConsumer:
        """Returns the consumer that accepts this node's *input* items.

        For Scan leaves the returned consumer is registered as a port and
        also returned (the engine pushes into it).
        """
        if isinstance(node, Scan):
            if self._fuse and getattr(downstream, "consumes_values_only", False):
                # The operator chain above this scan is fully positional
                # (compiled closures, projected output schemas): feeding
                # catalog-schema rows straight in saves one Row and one
                # StreamElement allocation per element at the port.
                consumer: StreamConsumer = downstream
            else:
                consumer = _RenamingConsumer(node, downstream)
            compiled.ports.append(
                ScanPort(node.entry.name, node.binding, consumer, scan=node)
            )
            return consumer
        if isinstance(node, ExchangeSource):
            # A shuffled feed from the other shards: rows arrive already
            # under the stage-2 schema via ShardedStreamEngine.push_exchange.
            shim = _ReschemaConsumer(node.schema, downstream)
            compiled.ports.append(
                ScanPort(node.name, node.name, shim, exchange=True)
            )
            return shim
        if isinstance(node, RemoteSource):
            # Rows from remote engines already carry the plan schema.
            shim = _ReschemaConsumer(node.schema, downstream)
            compiled.ports.append(ScanPort(node.name, node.name, shim))
            return shim
        if isinstance(node, CteRef):
            raise PlanError(
                "CteRef cannot run inside a streaming pipeline; use "
                "repro.stream.recursive.RecursiveView for recursive queries"
            )
        if isinstance(node, (Select, Project)):
            if self._fuse:
                fused = self._try_fuse(node, downstream, compiled)
                if fused is not None:
                    return fused
            if isinstance(node, Select):
                op = FilterOp(node.predicate, downstream, self._input_schema(node.child))
            else:
                items = [(item.expr, item.name) for item in node.items]
                op = ProjectOp(
                    items, node.schema, downstream, self._input_schema(node.child)
                )
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        if isinstance(node, Join):
            return self._compile_join(node, downstream, compiled)
        if isinstance(node, PartialAggregate):
            group_by = list(zip(node.group_by, node.key_names))
            aggregates = [(item.call, item.name) for item in node.aggregates]
            window = node.window if (
                node.window is not None and node.window.kind is WindowKind.RANGE
            ) else None
            op = PartialAggregateOp(
                group_by, aggregates, node.schema, downstream, window
            )
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        if isinstance(node, MergeAggregate):
            aggregates = [(item.call, item.name) for item in node.aggregates]
            windowed = (
                node.window is not None and node.window.kind is WindowKind.RANGE
            )
            op = MergeAggregateOp(
                len(node.key_names), aggregates, node.schema, downstream, windowed
            )
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        if isinstance(node, Aggregate):
            group_by = [(expr, name) for expr, name in zip(node.group_by, node.key_names)]
            aggregates = [(item.call, item.name) for item in node.aggregates]
            # An explicit window (from the windowed FROM entry) gives
            # window-at-a-time emission; otherwise run continuous running
            # aggregates emitted on every punctuation.
            window = node.window if (
                node.window is not None and node.window.kind is WindowKind.RANGE
            ) else None
            op = AggregateOp(
                group_by,
                aggregates,
                node.schema,
                downstream,
                window,
                self._input_schema(node.child),
            )
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        if isinstance(node, Distinct):
            op = DistinctOp(downstream)
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        if isinstance(node, OrderBy):
            op = OrderByOp(node.items, downstream, self._input_schema(node.child))
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        if isinstance(node, Limit):
            op = LimitOp(node.count, downstream)
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        if isinstance(node, Output):
            op = OutputOp(node.display, self._deliver, downstream, node.every)
            compiled.operators.append(op)
            return self._compile_node(node.child, op, compiled)
        raise PlanError(f"stream compiler cannot handle {type(node).__name__}")

    def _try_fuse(
        self, node: LogicalOp, downstream: StreamConsumer, compiled: CompiledPlan
    ) -> StreamConsumer | None:
        """Collapse a maximal Select/Project run rooted at ``node``.

        Returns the fused pipeline's input consumer, or None when the
        run is a single node (a dedicated FilterOp/ProjectOp is at least
        as fast and keeps per-node stats readable).
        """
        chain: list[LogicalOp] = []
        bottom: LogicalOp = node
        while isinstance(bottom, (Select, Project)):
            chain.append(bottom)
            bottom = bottom.child
        if len(chain) < 2:
            return None
        stages = []
        for link in reversed(chain):  # dataflow order: leaf-most first
            if isinstance(link, Select):
                stages.append(("filter", link.predicate))
            else:
                stages.append(
                    ("project", [item.expr for item in link.items], link.schema)
                )
        op = FusedOp(stages, node.schema, downstream, bottom.schema)
        compiled.operators.append(op)
        return self._compile_node(bottom, op, compiled)

    def _compile_join(
        self, node: Join, downstream: StreamConsumer, compiled: CompiledPlan
    ) -> StreamConsumer:
        left_schema = node.left.schema
        right_schema = node.right.schema
        equi: list[tuple[str, str]] = []
        residual = []
        for conjunct in split_conjuncts(node.predicate):
            pair = is_equijoin_conjunct(conjunct)
            placed = False
            if pair is not None:
                a, b = pair
                if left_schema.has(a) and right_schema.has(b):
                    equi.append((a, b))
                    placed = True
                elif left_schema.has(b) and right_schema.has(a):
                    equi.append((b, a))
                    placed = True
            if not placed:
                residual.append(conjunct)
        from repro.sql.expressions import conjoin

        join = SymmetricHashJoin(
            left_schema,
            right_schema,
            self._side_window(node.left),
            self._side_window(node.right),
            conjoin(residual),
            equi,
            downstream,
            compile_exprs=self._compiled_exprs,
        )
        compiled.operators.append(join)
        self._compile_node(node.left, join.left_port, compiled)
        self._compile_node(node.right, join.right_port, compiled)
        return join  # not used as an input port

    # ------------------------------------------------------------------
    # Window inference
    # ------------------------------------------------------------------
    def _scan_window(self, scan: Scan) -> WindowSpec:
        if scan.window is not None:
            return scan.window
        if scan.entry.kind is SourceKind.TABLE:
            return WindowSpec.unbounded()
        return self._default_window

    def _side_window(self, node: LogicalOp) -> WindowSpec:
        """Widest RANGE/ROWS window beneath ``node``; UNBOUNDED if the
        subtree reads only stored tables."""
        ranges: list[WindowSpec] = []
        unbounded_only = True
        for leaf in node.walk():
            if isinstance(leaf, ExchangeSource):
                # A shuffled feed keeps whatever window the replaced
                # stage-1 subtree declared (a table-only side must stay
                # unbounded, not pick up the stream default).
                inner = self._side_window(leaf.origin)
                if inner.kind is not WindowKind.UNBOUNDED:
                    ranges.append(inner)
                    unbounded_only = False
            elif isinstance(leaf, RemoteSource):
                ranges.append(self._default_window)
                unbounded_only = False
            elif isinstance(leaf, Scan):
                window = self._scan_window(leaf)
                if window.kind in (WindowKind.RANGE, WindowKind.ROWS, WindowKind.NOW):
                    ranges.append(window)
                    unbounded_only = False
        if unbounded_only:
            return WindowSpec.unbounded()
        range_windows = [w for w in ranges if w.kind is WindowKind.RANGE]
        if range_windows:
            return max(range_windows, key=lambda w: w.size)
        rows_windows = [w for w in ranges if w.kind is WindowKind.ROWS]
        if rows_windows:
            return max(rows_windows, key=lambda w: w.size)
        return ranges[0]

    def _inherited_window(self, node: LogicalOp) -> WindowSpec | None:
        window = self._side_window(node)
        return None if window.kind is WindowKind.UNBOUNDED else window
