"""SmartCIS / ASPEN reproduction.

A full reimplementation of the system demonstrated in *SmartCIS:
Integrating Digital and Physical Environments* (SIGMOD 2009): the ASPEN
declarative data-acquisition and integration substrate — Stream SQL
front end, in-network sensor query engine, distributed stream engine
with recursive views, federated optimizer with cross-engine cost
normalisation — plus the SmartCIS smart-building application over a
simulated Moore-building deployment.

Quickstart (the unified Session API)::

    from repro import connect

    with connect() as session:
        cursor = session.query("select r.room from Readings r where r.temp > 30")

Or the full SmartCIS demo application::

    from repro import SmartCIS

    app = SmartCIS(seed=7)
    app.start()
    app.simulator.run_for(30)
    app.add_visitor("alice", needed="%Fedora%")
    app.simulator.run_for(10)
    print(app.guide_visitor("alice").render())
"""

from repro.api import Session, connect
from repro.smartcis.app import Guidance, SmartCIS

__version__ = "1.0.0"

__all__ = ["SmartCIS", "Guidance", "Session", "connect", "__version__"]
