"""Shared fixtures: catalogs, engines, networks and small worlds."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, DeviceInfo, SourceStatistics
from repro.data import DataType, Row, Schema
from repro.plan import PlanBuilder
from repro.runtime import Simulator
from repro.sensor import Mote, MoteRole, Position, SensorNetwork
from repro.stream import StreamEngine


@pytest.fixture
def catalog() -> Catalog:
    """A catalog with the demo-style relations registered."""
    cat = Catalog()
    cat.register_stream(
        "Person",
        Schema.of(
            ("id", DataType.INT),
            ("room", DataType.STRING),
            ("needed", DataType.STRING),
        ),
        rate=0.05,
        statistics=SourceStatistics(rate=0.05, distinct_values={"room": 10}),
    )
    cat.register_sensor_stream(
        "AreaSensors",
        Schema.of(("room", DataType.STRING), ("status", DataType.STRING)),
        DeviceInfo(node_ids=(1, 2, 3), sample_period=10.0, attribute="light"),
        statistics=SourceStatistics(rate=0.3, distinct_values={"room": 3, "status": 2}),
    )
    cat.register_sensor_stream(
        "SeatSensors",
        Schema.of(
            ("room", DataType.STRING),
            ("desk", DataType.STRING),
            ("status", DataType.STRING),
        ),
        DeviceInfo(node_ids=(3, 4, 5), sample_period=5.0, attribute="light"),
        statistics=SourceStatistics(
            rate=0.6, distinct_values={"room": 3, "desk": 6, "status": 2}
        ),
    )
    cat.register_table(
        "Machines",
        Schema.of(
            ("host", DataType.STRING),
            ("room", DataType.STRING),
            ("desk", DataType.STRING),
            ("software", DataType.STRING),
        ),
        cardinality=6,
        statistics=SourceStatistics(
            cardinality=6, distinct_values={"room": 3, "desk": 6, "software": 3}
        ),
    )
    cat.register_table(
        "Route",
        Schema.of(
            ("start", DataType.STRING),
            ("end", DataType.STRING),
            ("path", DataType.STRING),
        ),
        cardinality=20,
    )
    cat.register_stream(
        "Temps",
        Schema.of(("room", DataType.STRING), ("temp", DataType.FLOAT)),
        rate=1.0,
        statistics=SourceStatistics(rate=1.0, distinct_values={"room": 3}),
    )
    cat.register_table(
        "Edges",
        Schema.of(("src", DataType.STRING), ("dst", DataType.STRING), ("dist", DataType.FLOAT)),
        cardinality=10,
    )
    return cat


@pytest.fixture
def builder(catalog: Catalog) -> PlanBuilder:
    return PlanBuilder(catalog)


@pytest.fixture
def engine(catalog: Catalog) -> StreamEngine:
    return StreamEngine(catalog)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def line_network(simulator: Simulator) -> SensorNetwork:
    """Base at x=0, five motes every 80 ft in a line (multihop chain)."""
    net = SensorNetwork(simulator)
    net.add_basestation(Position(0, 0))
    for i in range(1, 6):
        mote = Mote(i, Position(i * 80.0, 0.0), MoteRole.WORKSTATION, radio_range=100.0)
        mote.attach_sensor("temp", lambda i=i: 20.0 + i)
        net.add_mote(mote)
    net.rebuild_topology()
    return net


def make_row(schema: Schema, *values) -> Row:
    return Row(schema, values)


def edges_schema() -> Schema:
    return Schema.of(
        ("src", DataType.STRING), ("dst", DataType.STRING), ("dist", DataType.FLOAT)
    )
