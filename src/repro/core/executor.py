"""Federated plan execution: deploy fragments, wire engines together.

Given a :class:`~repro.core.federated.FederatedPlan`, the executor

1. deploys every pushed fragment on the :class:`SensorEngine`
   (collection / aggregation / pairwise join, with the optimizer's
   per-pair join strategies),
2. wires the basestation delivery callback so fragment results are
   projected to the fragment's output schema and pushed into the
   :class:`StreamEngine` as RemoteSource feeds, and
3. starts the stream plan as a continuous query.

The fragment's non-leaf operators above the in-network primitive
(Projects and Selects introduced by view expansion) are re-applied at
the basestation by composing their expressions — the network already
filtered and joined, so this is just column shaping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data.tuples import Row
from repro.errors import ExecutionError
from repro.plan.logical import (
    Aggregate,
    Join,
    LogicalOp,
    Project,
    Scan,
    Select,
)
from repro.core.federated import FederatedPlan, PushedFragment
from repro.sensor.engine import DeployedQuery, SensorEngine, _DictRow
from repro.sql.expressions import ColumnRef, Expr, substitute_columns
from repro.stream.engine import QueryHandle, StreamEngine


@dataclass
class FederatedExecution:
    """A running federated query."""

    plan: FederatedPlan
    stream_handle: QueryHandle
    deployments: list[DeployedQuery] = field(default_factory=list)

    @property
    def results(self) -> list[Row]:
        return self.stream_handle.results

    def stop(self) -> None:
        for deployment in self.deployments:
            deployment.stop()


class FederatedExecutor:
    """Deploys federated plans across the two engines.

    ``stream_engine`` is anything with ``push_remote(name, row, time)``
    (and, for :meth:`execute`, ``execute(plan)``): the single
    :class:`StreamEngine`, a
    :class:`~repro.stream.sharded.ShardedStreamEngine` pool, or a test
    double — fragment deliveries are projected and handed to it as
    RemoteSource feeds either way. The Session's ``FederatedBackend``
    uses :meth:`deploy` fragment by fragment (its delegate backend owns
    the residual's cursor); :meth:`execute` remains the one-call form
    over a raw engine pair.
    """

    def __init__(self, sensor_engine: SensorEngine, stream_engine: StreamEngine):
        self.sensor_engine = sensor_engine
        self.stream_engine = stream_engine

    def execute(self, plan: FederatedPlan) -> FederatedExecution:
        """Deploy fragments, start the stream query, return the handle."""
        stream_handle = self.stream_engine.execute(plan.stream_plan)
        execution = FederatedExecution(plan, stream_handle)
        for fragment in plan.pushed:
            execution.deployments.append(self.deploy(fragment))
        return execution

    # ------------------------------------------------------------------
    def deploy(self, fragment: PushedFragment) -> DeployedQuery:
        """Deploy one pushed fragment in-network; its deliveries are
        projected to the fragment's output schema and pushed into the
        stream engine as the fragment's RemoteSource feed."""
        deployment = fragment.deployment
        projector = _FragmentProjector(fragment)

        def deliver(name: str, values: dict[str, Any], time: float) -> None:
            row = projector.project(values)
            self.stream_engine.push_remote(fragment.name, row, time)

        engine = self.sensor_engine
        if deployment.kind == "collection":
            scan = next(n for n in fragment.fragment.walk() if isinstance(n, Scan))
            return engine.deploy_collection(
                deployment.relations[0],
                projector.rewrite_to_base(deployment.predicate),
                target_name=fragment.name,
                key_prefix=scan.binding,
                on_result=deliver,
            )
        if deployment.kind == "aggregation":
            return engine.deploy_aggregation(
                deployment.relations[0],
                deployment.attribute or "",
                deployment.aggregate or "AVG",
                target_name=fragment.name,
                on_result=deliver,
            )
        if deployment.kind == "join":
            join = next(n for n in fragment.fragment.walk() if isinstance(n, Join))
            left_scan = next(n for n in join.left.walk() if isinstance(n, Scan))
            right_scan = next(n for n in join.right.walk() if isinstance(n, Scan))
            # Local filters below the join run at the join site together
            # with the join predicate.
            local = projector.rewrite_to_base(self._local_predicate(fragment.fragment))
            return engine.deploy_join(
                left_scan.entry.name,
                right_scan.entry.name,
                deployment.pairs,
                local,
                target_name=fragment.name,
                left_prefix=left_scan.binding,
                right_prefix=right_scan.binding,
                on_result=deliver,
            )
        raise ExecutionError(f"unknown deployment kind {deployment.kind!r}")

    @staticmethod
    def _local_predicate(fragment: LogicalOp) -> Expr | None:
        from repro.sql.expressions import conjoin, split_conjuncts

        conjuncts: list[Expr] = []
        for node in fragment.walk():
            if isinstance(node, Select):
                conjuncts.extend(split_conjuncts(node.predicate))
            if isinstance(node, Join) and node.predicate is not None:
                conjuncts.extend(split_conjuncts(node.predicate))
        return conjoin(conjuncts)


class _FragmentProjector:
    """Re-applies a fragment's column shaping at the basestation.

    The sensor engine delivers tuples keyed by qualified base-column
    names (``sa.room``) — or ``{agg_0: value}`` for aggregations. The
    projector composes the fragment's Project layers into one expression
    per output field and evaluates them per delivery.
    """

    def __init__(self, fragment: PushedFragment):
        self._fragment = fragment
        self._schema = fragment.fragment.schema
        self._aggregate = next(
            (n for n in fragment.fragment.walk() if isinstance(n, Aggregate)), None
        )
        items = _compose_projection(fragment.fragment)
        if items is None:
            items = [(ColumnRef(f.name), f.name) for f in self._schema]
        self._items = items

    def rewrite_to_base(self, predicate: Expr | None) -> Expr | None:
        """Rewrite derived-column references in a pushed predicate back to
        base-column expressions.

        View expansion can leave predicates like ``t.celsius > 0`` above
        a renaming Project (``wt.temp_c AS t.celsius``); the mote only
        sees base columns, so the predicate must be substituted through
        the composed projection before deployment.
        """
        if predicate is None:
            return None
        mapping = {name: expr for expr, name in self._items}
        return substitute_columns(predicate, mapping)

    def project(self, values: dict[str, Any]) -> Row:
        if self._aggregate is not None:
            values = self._aggregate_values(values)
        row_view = _DictRow(values)
        out = [expr.eval(row_view) for expr, _ in self._items]
        return Row(self._schema, out, validate=False)

    def _aggregate_values(self, values: dict[str, Any]) -> dict[str, Any]:
        """Map the engine's ``{value, count}`` payload onto the Aggregate
        node's output column names."""
        assert self._aggregate is not None
        if not self._aggregate.aggregates:
            raise ExecutionError("aggregate fragment without aggregate items")
        name = self._aggregate.aggregates[0].name
        call = self._aggregate.aggregates[0].call
        raw = values.get("value")
        if call.name.upper() == "COUNT":
            raw = int(values.get("count", raw or 0))
        return {name: raw}


def _compose_projection(node: LogicalOp) -> list[tuple[Expr, str]] | None:
    """Flatten stacked Projects into expressions over base columns.

    Returns None when the fragment has no Project (identity over the
    base schema). Selects are transparent (already applied in-network);
    Join/Scan/Aggregate terminate composition.
    """
    if isinstance(node, Project):
        inner = _compose_projection(node.child)
        if inner is None:
            return [(item.expr, item.name) for item in node.items]
        mapping = {name: expr for expr, name in inner}
        return [
            (substitute_columns(item.expr, mapping), item.name) for item in node.items
        ]
    if isinstance(node, Select):
        return _compose_projection(node.child)
    return None
