"""Checkpoint/restore: the recovery spine of standing queries.

Covers the :mod:`repro.stream.checkpoint` primitives (replay log,
stores, coordinator barriers) and the engine-level contract: a failed
:class:`StreamEngine` restored from the latest punctuation-aligned
barrier plus the log suffix emits *exactly* what the failure-free run
would have — no duplicated and no dropped window emissions — and the
replay touches only the suffix since the barrier, never the full
history.
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.api.sources import StreamSource
from repro.catalog import Catalog
from repro.data import DataType, Row, Schema
from repro.errors import ExecutionError
from repro.plan import PlanBuilder
from repro.stream.checkpoint import (
    CheckpointCoordinator,
    FileCheckpointStore,
    MemoryCheckpointStore,
    ReplayLog,
)
from repro.stream.engine import StreamEngine
from repro.stream.sharded import ShardedStreamEngine

READINGS = Schema.of(
    ("host", DataType.STRING),
    ("temp", DataType.FLOAT),
    ("load", DataType.FLOAT),
)

QUERIES = [
    # Windowed aggregation (buffer + groups cross the barrier).
    "select r.host, count(*) as n, avg(r.temp) as mean from Readings r "
    "[range 10 seconds slide 10 seconds] group by r.host",
    # DISTINCT (seen-set state).
    "select distinct r.host from Readings r where r.temp > 10.0",
    # Stateless chain (only counters).
    "select r.host, r.temp * 2.0 as t2 from Readings r where r.load > 0.2",
]


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream("Readings", READINGS, rate=10.0)
    return catalog


def _rows(count: int):
    rows, stamps = [], []
    for i in range(count):
        rows.append(
            Row(
                READINGS,
                (f"ws{i % 4}", float(i % 13), round((i % 10) / 10.0, 1)),
                validate=False,
            )
        )
        stamps.append(float(i))
    return rows, stamps


def _segments(handle, marks, index, out):
    elements = handle.sink.elements
    fresh = elements[marks[index]:]
    marks[index] = len(elements)
    out[index].append(sorted((e.timestamp, repr(e.row.values)) for e in fresh))


def _drive(engine, handles, rows, stamps, fail_at=None, coordinator=None):
    """Push in chunks of 10 with punctuation between; optionally fail and
    recover the engine right before chunk ``fail_at``."""
    segments = [[] for _ in handles]
    marks = [0 for _ in handles]
    chunk = 0
    for offset in range(0, len(rows), 10):
        if fail_at is not None and chunk == fail_at:
            engine.fail()
            handles[:] = coordinator.recover()
        engine.push_many(
            "Readings", rows[offset : offset + 10], stamps[offset : offset + 10]
        )
        engine.punctuate(stamps[min(offset + 9, len(stamps) - 1)])
        chunk += 1
        for index in range(len(handles)):
            _segments(handles[index], marks, index, segments)
    engine.punctuate(stamps[-1] + 100.0)
    for index in range(len(handles)):
        _segments(handles[index], marks, index, segments)
    return segments


def _build(interval):
    catalog = _catalog()
    engine = StreamEngine(catalog)
    coordinator = CheckpointCoordinator(engine, interval=interval)
    builder = PlanBuilder(catalog)
    handles = [engine.execute(builder.build_sql(sql)) for sql in QUERIES]
    return engine, coordinator, handles


class TestReplayLog:
    def test_append_prune_suffix(self):
        log = ReplayLog()
        for i in range(10):
            log.append(("push", None, "s", i, float(i)))
        assert log.next_seq == 10 and log.base_seq == 0
        log.prune_through(4)
        assert log.base_seq == 4 and len(log) == 6
        suffix = log.suffix(7)
        assert [entry[3] for entry in suffix] == [7, 8, 9]
        assert log.suffix(10) == []

    def test_truncated_suffix_raises(self):
        log = ReplayLog()
        for i in range(5):
            log.append(("push", None, "s", i, float(i)))
        log.prune_through(3)
        with pytest.raises(ExecutionError, match="replay log truncated"):
            log.suffix(1)

    def test_hard_limit_evicts_oldest(self):
        log = ReplayLog(limit=3)
        for i in range(5):
            log.append(("push", None, "s", i, float(i)))
        assert len(log) == 3 and log.base_seq == 2 and log.next_seq == 5
        assert [entry[3] for entry in log.suffix(2)] == [2, 3, 4]


class TestStores:
    def test_memory_store_keeps_last_n(self):
        store = MemoryCheckpointStore(keep=2)
        for i in range(5):
            store.save(i)
        assert store.checkpoints == [3, 4] and store.latest() == 4

    def test_file_store_roundtrip_and_restart(self, tmp_path):
        engine, coordinator, _ = _build(interval=None)
        coordinator.store = FileCheckpointStore(tmp_path, keep=2)
        rows, stamps = _rows(30)
        engine.push_many("Readings", rows, stamps)
        engine.punctuate(stamps[-1])
        for _ in range(3):
            coordinator.checkpoint(stamps[-1])
        files = sorted(tmp_path.glob("checkpoint-*.pkl"))
        assert len(files) == 2  # pruned to keep
        # A fresh store over the same directory serves the survivor.
        reopened = FileCheckpointStore(tmp_path, keep=2)
        latest = reopened.latest()
        assert latest.checkpoint_id == 3
        assert len(latest.queries) == len(QUERIES)


class TestCoordinator:
    def test_interval_zero_checkpoints_every_punctuation(self):
        engine, coordinator, _ = _build(interval=0.0)
        rows, stamps = _rows(30)
        _drive(engine, list(range(0)), rows, stamps)  # no handles: just ingest
        assert coordinator.checkpoints_taken == 4  # 3 chunks + flush

    def test_interval_none_never_auto_checkpoints(self):
        engine, coordinator, _ = _build(interval=None)
        rows, stamps = _rows(30)
        engine.push_many("Readings", rows, stamps)
        engine.punctuate(stamps[-1])
        assert coordinator.checkpoints_taken == 0
        assert len(coordinator.log) > 0  # the log still accumulates

    def test_barrier_prunes_log(self):
        engine, coordinator, _ = _build(interval=None)
        rows, stamps = _rows(20)
        engine.push_many("Readings", rows, stamps)
        engine.punctuate(stamps[-1])
        seq_before = coordinator.log.next_seq
        checkpoint = coordinator.checkpoint(stamps[-1])
        assert checkpoint.log_seq == seq_before
        assert coordinator.log.base_seq == seq_before
        assert len(coordinator.log) == 0

    def test_recover_without_checkpoint_raises(self):
        engine, coordinator, _ = _build(interval=None)
        engine.fail()
        with pytest.raises(ExecutionError, match="no checkpoint to recover"):
            coordinator.recover()

    def test_pool_recover_is_per_shard(self):
        pool = ShardedStreamEngine(_catalog(), shards=2)
        coordinator = CheckpointCoordinator(pool, interval=10.0)
        with pytest.raises(ExecutionError, match="per-shard"):
            coordinator.recover()

    def test_negative_interval_rejected(self):
        with pytest.raises(ExecutionError, match="interval"):
            CheckpointCoordinator(StreamEngine(_catalog()), interval=-1.0)


class TestEngineRestore:
    def test_failed_engine_rejects_work_until_restore(self):
        engine, coordinator, handles = _build(interval=10.0)
        rows, stamps = _rows(10)
        engine.push_many("Readings", rows, stamps)
        engine.punctuate(stamps[-1])
        engine.fail()
        assert engine.failed and not engine.running_queries
        assert engine.push("Readings", rows[0], 99.0) is None  # swallowed
        with pytest.raises(ExecutionError, match="restore"):
            engine.execute(handles[0].plan)
        coordinator.recover()
        assert not engine.failed and len(engine.running_queries) == len(QUERIES)

    @pytest.mark.parametrize("fail_at", [1, 2, 3])
    def test_restore_identity_mid_corpus(self, fail_at):
        """Post-recovery emissions — including the window that straddles
        the failure — match the failure-free run exactly."""
        rows, stamps = _rows(60)
        engine, _, handles = _build(interval=15.0)
        expected = _drive(engine, handles, rows, stamps)

        engine2, coordinator2, handles2 = _build(interval=15.0)
        got = _drive(
            engine2, handles2, rows, stamps, fail_at=fail_at, coordinator=coordinator2
        )
        assert got == expected

    def test_recovery_replays_only_the_suffix(self):
        rows, stamps = _rows(60)
        engine, coordinator, handles = _build(interval=15.0)
        engine.push_many("Readings", rows[:40], stamps[:40])
        engine.punctuate(stamps[39])
        barrier = coordinator.latest()
        assert barrier is not None
        # Post-barrier traffic, then failure.
        engine.push_many("Readings", rows[40:50], stamps[40:50])
        suffix_len = len(coordinator.log.suffix(barrier.log_seq))
        engine.fail()
        coordinator.recover()
        replay = coordinator.last_replay
        assert replay["target"] == "engine"
        assert replay["from_seq"] == barrier.log_seq  # suffix, not history
        assert replay["entries"] == suffix_len
        # The barrier pruned everything before it out of the log.
        assert coordinator.log.base_seq >= barrier.log_seq > 0

    def test_restore_rejects_mismatched_operator_state(self):
        engine, coordinator, handles = _build(interval=None)
        rows, stamps = _rows(10)
        engine.push_many("Readings", rows, stamps)
        engine.punctuate(stamps[-1])
        checkpoint = coordinator.checkpoint(stamps[-1])
        # Swap two queries' operator states: recompiling query 0's plan
        # must refuse query 1's snapshot.
        checkpoint.queries[0].operators, checkpoint.queries[1].operators = (
            checkpoint.queries[1].operators,
            checkpoint.queries[0].operators,
        )
        engine.fail()
        with pytest.raises(ExecutionError):
            engine.restore(checkpoint)

    def test_restore_preserves_sink_contents(self):
        engine, coordinator, handles = _build(interval=None)
        rows, stamps = _rows(30)
        engine.push_many("Readings", rows, stamps)
        engine.punctuate(stamps[-1])
        before = [list(h.sink.elements) for h in handles]
        coordinator.checkpoint(stamps[-1])
        engine.fail()
        restored = coordinator.recover()
        after = [list(h.sink.elements) for h in restored]
        assert after == before


class TestSessionWiring:
    def _session(self, **kwargs):
        session = connect(**kwargs)
        session.attach(
            StreamSource("Readings", READINGS, rate=10.0, partition_by="host")
        )
        return session

    def test_connect_without_interval_has_no_checkpointer(self):
        with self._session() as session:
            assert session.checkpointer is None
            assert session.engine.checkpointer is None

    def test_connect_attaches_coordinator_to_engine(self):
        with self._session(checkpoint_interval=10.0) as session:
            assert session.checkpointer is session.engine.checkpointer
            assert session.checkpointer.interval == 10.0

    def test_connect_attaches_coordinator_to_pool(self):
        with self._session(shards=3, checkpoint_interval=10.0) as session:
            assert session.engine.shard_count == 3
            assert session.checkpointer is session.engine.checkpointer

    def test_session_recovery_end_to_end(self):
        rows, stamps = _rows(40)

        def run(fail):
            with self._session(checkpoint_interval=10.0) as session:
                cursor = session.query(QUERIES[0])
                for offset in range(0, len(rows), 10):
                    if fail and offset == 30:
                        session.engine.fail()
                        handles = session.checkpointer.recover()
                        cursor._handle = handles[0]
                    for row, stamp in zip(
                        rows[offset : offset + 10], stamps[offset : offset + 10]
                    ):
                        session.push("Readings", row, stamp)
                    session.punctuate(stamps[min(offset + 9, len(stamps) - 1)])
                session.punctuate(stamps[-1] + 100.0)
                return [tuple(r.values) for r in cursor.results()]

        assert run(fail=True) == run(fail=False)
