"""Experiment E6 — occupant detection and localisation.

Paper §2: hallway motes "at major intersection points, and every 100
feet" detect the beacon carried by an occupant. We walk a simulated
occupant down a hallway and measure localisation accuracy (distance
between the estimate and the true position) and fix latency, sweeping
the beacon period and the detector spacing.

Shape: error is bounded by about half the detector spacing plus the
distance walked in one beacon period; faster beacons and denser
detectors both tighten the estimate.
"""

import pytest

from repro.building import Occupant, RoutingGraph
from repro.runtime import Simulator
from repro.sensor import (
    Beacon,
    Localizer,
    Mote,
    MoteRole,
    Position,
    RFIDService,
    SensorNetwork,
)

HALL_LENGTH = 600.0
WALK_SPEED = 4.0


def build_hallway(spacing: float, seed: int = 13):
    simulator = Simulator(seed)
    network = SensorNetwork(simulator)
    network.add_basestation(Position(HALL_LENGTH / 2, 30), radio_range=400)
    positions = {}
    mote_id = 1
    x = 0.0
    while x <= HALL_LENGTH:
        network.add_mote(Mote(mote_id, Position(x, 0), MoteRole.HALLWAY, radio_range=400))
        positions[mote_id] = Position(x, 0)
        mote_id += 1
        x += spacing
    network.rebuild_topology()

    graph = RoutingGraph()
    graph.add_point("start", Position(0, 0))
    graph.add_point("end", Position(HALL_LENGTH, 0))
    graph.add_edge("start", "end")
    return simulator, network, positions, graph


def run_walk(spacing: float, beacon_period: float) -> tuple[float, float, int]:
    """Returns (mean error ft, max error ft, fixes)."""
    simulator, network, positions, graph = build_hallway(spacing)
    localizer = Localizer(positions, horizon=beacon_period * 2.5)
    service = RFIDService(network, lambda v, t: localizer.observe(v, t))
    occupant = Occupant("visitor", 9, simulator, graph, "start", speed=WALK_SPEED)
    service.add_beacon(
        Beacon(9, occupant.position_fn, period=beacon_period, tx_range=spacing * 0.75)
    )
    occupant.walk_to("end")

    errors = []
    sample_every = 5.0
    t = sample_every
    total = HALL_LENGTH / WALK_SPEED
    while t < total:
        simulator.run_until(t)
        estimate = localizer.locate(9, simulator.now)
        if estimate is not None:
            truth = occupant.position
            errors.append(estimate.distance_to(truth))
        t += sample_every
    if not errors:
        return float("inf"), float("inf"), 0
    return sum(errors) / len(errors), max(errors), len(errors)


def test_e6_accuracy_sweep(table_printer, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    results = {}
    for spacing in (50.0, 100.0, 150.0):
        for period in (1.0, 2.0, 4.0):
            mean_err, max_err, fixes = run_walk(spacing, period)
            results[(spacing, period)] = mean_err
            bound = spacing / 2 + WALK_SPEED * period + spacing * 0.25
            rows.append(
                [
                    f"{spacing:.0f}",
                    f"{period:.0f}",
                    fixes,
                    f"{mean_err:.1f}",
                    f"{max_err:.1f}",
                    f"{bound:.0f}",
                ]
            )
            # Accuracy is bounded by the geometry: roughly half the
            # spacing plus one beacon period of walking.
            assert mean_err <= bound, (spacing, period, mean_err)
    table_printer(
        "E6: localisation error vs detector spacing and beacon period",
        ["spacing (ft)", "period (s)", "fixes", "mean err (ft)", "max err (ft)", "bound"],
        rows,
    )
    # Denser detectors improve the mean estimate at fixed period.
    assert results[(50.0, 2.0)] < results[(150.0, 2.0)]


def test_e6_sighting_latency(table_printer, benchmark):
    """Time from beacon transmission to sighting arriving at the base."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    simulator, network, positions, graph = build_hallway(100.0)
    arrivals = []
    service = RFIDService(
        network, lambda v, t: arrivals.append(t - v["heard_at"])
    )
    occupant = Occupant("visitor", 9, simulator, graph, "start", speed=WALK_SPEED)
    service.add_beacon(Beacon(9, occupant.position_fn, period=2.0, tx_range=80))
    simulator.run_for(30.0)
    assert arrivals
    mean_latency = sum(arrivals) / len(arrivals)
    table_printer(
        "E6: sighting delivery latency",
        ["sightings", "mean (ms)", "max (ms)"],
        [[len(arrivals), f"{mean_latency * 1000:.0f}", f"{max(arrivals) * 1000:.0f}"]],
    )
    assert 0 < mean_latency < 0.5


def test_e6_localization_speed(benchmark):
    simulator, network, positions, graph = build_hallway(100.0)
    localizer = Localizer(positions, horizon=5.0)
    for i, detector in enumerate(list(positions)[:5]):
        localizer.observe(
            {"detector": detector, "beacon": 9, "rssi": -50.0 - i}, time=1.0
        )
    benchmark(lambda: localizer.locate(9, 2.0))
