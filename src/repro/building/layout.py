"""The default "Moore-like" deployment.

Paper §1: "SmartCIS consists of a suite of sensor devices deployed
throughout a portion of Penn's Moore building (which holds most of our
laboratories), a set of 'soft sensors' ... and a graphical interface."

This module builds a configurable approximation of that deployment:

* a hallway spine with routing points every ~100 feet plus one per lab
  door (paper §2: detectors "at major intersection points, and every
  100 feet"),
* labs along the south side (4 desks + machines each), offices and a
  machine room (servers) along the north side,
* motes: one basestation, one RFID detector per hallway routing point,
  one room mote (temperature + light) per room, and per desk a seat
  mote (chair light level) paired with a workstation mote (machine
  temperature),
* a :class:`SimulatedMachine` per desk machine and per server.

Everything is returned in one :class:`Deployment` bundle that the
SmartCIS application layer wires to the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.building.model import Building, Desk, Room, RoomKind
from repro.building.topology import RoutingGraph
from repro.runtime import Simulator
from repro.sensor.mote import Mote, MoteRole, Position
from repro.sensor.network import SensorNetwork
from repro.wrappers.machine import MachineSpec, SimulatedMachine

#: Software images cycled across lab machines (the demo's "Fedora, Word" ask).
SOFTWARE_IMAGES = [
    "Fedora Linux,Emacs,GCC",
    "Windows XP,Word,Excel",
    "Fedora Linux,Matlab",
    "Ubuntu Linux,Word,OpenOffice",
]

# Mote id blocks, fixed so tests and docs can refer to them.
BASESTATION_ID = 0
HALLWAY_ID_BASE = 1     # one per hallway routing point
ROOM_ID_BASE = 40       # one per room
SEAT_ID_BASE = 100      # one per desk
WORKSTATION_ID_BASE = 200  # one per desk machine


@dataclass
class Deployment:
    """Everything the SmartCIS application needs, fully assembled."""

    simulator: Simulator
    building: Building
    graph: RoutingGraph
    network: SensorNetwork
    machines: dict[str, SimulatedMachine] = field(default_factory=dict)
    machine_specs: list[MachineSpec] = field(default_factory=list)
    #: detector mote id → routing point name it sits on.
    detector_points: dict[int, str] = field(default_factory=dict)
    #: (room, desk) → (seat mote id, workstation mote id or None).
    desk_motes: dict[tuple[str, str], tuple[int, int | None]] = field(default_factory=dict)
    #: room id → room mote id.
    room_motes: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def detector_coord_rows(self) -> list[dict[str, object]]:
        """``DetectorCoords`` table rows (paper: detector map coordinates)."""
        rows = []
        for mote_id, point_name in sorted(self.detector_points.items()):
            position = self.graph.point(point_name).position
            rows.append({"detector": mote_id, "x": position.x, "y": position.y})
        return rows

    def machine_rows(self) -> list[dict[str, object]]:
        """``Machines`` table rows."""
        return [spec.as_row() for spec in self.machine_specs]

    def room_rows(self) -> list[dict[str, object]]:
        """``Rooms`` table rows."""
        return [
            {"room": room.room_id, "kind": room.kind.value, "label": room.room_id}
            for room in self.building.rooms.values()
        ]

    def seat_mote_ids(self) -> list[int]:
        return [seat for seat, _ in self.desk_motes.values()]

    def workstation_mote_ids(self) -> list[int]:
        return [ws for _, ws in self.desk_motes.values() if ws is not None]

    def room_mote_ids(self) -> list[int]:
        return list(self.room_motes.values())

    def desk_point(self, room_id: str, desk_id: str) -> str:
        """Routing point name of a desk (for walking to it)."""
        return f"{room_id}.{desk_id}"

    def room_center_point(self, room_id: str) -> str:
        return f"{room_id}.center"


def build_moore_deployment(
    simulator: Simulator,
    *,
    lab_count: int = 4,
    desks_per_lab: int = 4,
    server_count: int = 4,
    hallway_length: float = 400.0,
    radio_range: float = 130.0,
) -> Deployment:
    """Construct the default deployment.

    The building scales with ``lab_count``: labs line the south side of
    a single east-west hallway, offices and the machine room the north
    side. Larger values grow the hallway accordingly.
    """
    building = Building("Moore")
    graph = RoutingGraph()
    network = SensorNetwork(simulator)
    deployment = Deployment(simulator, building, graph, network)

    hallway_length = max(hallway_length, 100.0 * (lab_count + 1))
    hallway_y = 60.0

    # --- hallway routing points every ~100 ft -------------------------
    spine: list[str] = []
    x = 10.0
    index = 0
    while x < hallway_length:
        name = "lobby" if index == 0 else f"h{int(x)}"
        graph.add_point(name, Position(x, hallway_y))
        spine.append(name)
        x += 100.0
        index += 1
    for a, b in zip(spine, spine[1:]):
        graph.add_edge(a, b)

    # --- basestation mid-hallway --------------------------------------
    mid = graph.point(spine[len(spine) // 2]).position
    network.add_basestation(Position(mid.x, mid.y), radio_range + 30.0)

    # --- labs (south) and offices/machine room (north) ----------------
    lab_width, lab_height, gap = 80.0, 50.0, 20.0
    for lab_index in range(lab_count):
        room_id = f"lab{lab_index + 1}"
        origin = Position(40.0 + lab_index * (lab_width + gap), 0.0)
        room = Room(room_id, RoomKind.LAB, origin, lab_width, lab_height)
        building.add_room(room)
        _wire_room(deployment, room, hallway_y, spine, desks_per_lab, radio_range)

    office_count = max(lab_count - 1, 1)
    for office_index in range(office_count):
        room_id = f"office{office_index + 1}"
        origin = Position(40.0 + office_index * (lab_width + gap), 70.0)
        room = Room(room_id, RoomKind.OFFICE, origin, lab_width, lab_height)
        building.add_room(room)
        _wire_room(deployment, room, hallway_y, spine, desk_count=1, radio_range=radio_range)

    machine_room = Room(
        "machineroom",
        RoomKind.MACHINE_ROOM,
        Position(40.0 + office_count * (lab_width + gap), 70.0),
        lab_width,
        lab_height,
        base_temperature=19.0,
    )
    building.add_room(machine_room)
    _wire_room(deployment, machine_room, hallway_y, spine, desk_count=0, radio_range=radio_range)

    # --- machines on lab desks -----------------------------------------
    for room in building.labs():
        for desk_index, desk in enumerate(sorted(room.desks.values(), key=lambda d: d.desk_id)):
            host = f"{room.room_id}-ws{desk_index + 1}"
            software = SOFTWARE_IMAGES[desk_index % len(SOFTWARE_IMAGES)]
            spec = MachineSpec(host, room.room_id, desk.desk_id, software)
            desk.machine_host = host
            deployment.machine_specs.append(spec)
            deployment.machines[host] = SimulatedMachine(spec, simulator)

    # --- servers in the machine room ------------------------------------
    for server_index in range(server_count):
        host = f"srv{server_index + 1}"
        spec = MachineSpec(host, "machineroom", f"rack{server_index + 1}", "Fedora Linux,Apache", is_server=True)
        deployment.machine_specs.append(spec)
        deployment.machines[host] = SimulatedMachine(spec, simulator)

    # --- motes ------------------------------------------------------------
    _deploy_motes(deployment, radio_range)
    network.rebuild_topology()
    return deployment


def _wire_room(
    deployment: Deployment,
    room: Room,
    hallway_y: float,
    spine: list[str],
    desk_count: int,
    radio_range: float,
) -> None:
    """Create a room's door/center/desk routing points and its desks."""
    graph = deployment.graph
    door_x = room.origin.x + room.width / 2
    door_name = f"{room.room_id}.door"
    graph.add_point(door_name, Position(door_x, hallway_y))
    room.entrance = graph.point(door_name).position
    # Connect the door to its nearest spine point(s).
    nearest = min(
        spine,
        key=lambda name: abs(graph.point(name).position.x - door_x),
    )
    graph.add_edge(door_name, nearest)

    center_name = f"{room.room_id}.center"
    graph.add_point(center_name, room.center)
    graph.add_edge(door_name, center_name)

    inset_x, inset_y = 15.0, 10.0
    for desk_index in range(desk_count):
        desk_id = f"d{desk_index + 1}"
        column = desk_index % 2
        row_index = desk_index // 2
        desk_y = room.origin.y + inset_y + row_index * 18.0
        desk_position = Position(room.origin.x + inset_x + column * 45.0, desk_y)
        desk = Desk(desk_id, desk_position)
        room.add_desk(desk)
        point_name = f"{room.room_id}.{desk_id}"
        graph.add_point(point_name, desk_position)
        graph.add_edge(center_name, point_name)


def _deploy_motes(deployment: Deployment, radio_range: float) -> None:
    """Instantiate motes with sensors bound to the building/machine state."""
    network = deployment.network
    building = deployment.building
    simulator = deployment.simulator

    # Hallway RFID detectors: one per hallway-level routing point.
    detector_id = HALLWAY_ID_BASE
    for point in deployment.graph.points:
        if "." in point.name and not point.name.endswith(".door"):
            continue  # in-room points get no detector
        mote = Mote(detector_id, point.position, MoteRole.HALLWAY, radio_range)
        network.add_mote(mote)
        deployment.detector_points[detector_id] = point.name
        detector_id += 1

    # Room motes: temperature and light of the room itself.
    room_id_counter = ROOM_ID_BASE
    for room in building.rooms.values():
        mote = Mote(room_id_counter, room.center, MoteRole.ROOM, radio_range)
        mote.attach_sensor(
            "temperature",
            lambda room=room: room.base_temperature
            + 0.4 * sum(1 for d in room.desks.values() if d.occupied)
            + simulator.rng.gauss(0, 0.2),
        )
        mote.attach_sensor("light", lambda room=room: room.ambient_light())
        network.add_mote(mote)
        deployment.room_motes[room.room_id] = room_id_counter
        room_id_counter += 1

    # Seat + workstation motes per desk.
    seat_id = SEAT_ID_BASE
    workstation_id = WORKSTATION_ID_BASE
    for room, desk in building.all_desks():
        seat = Mote(seat_id, desk.position, MoteRole.SEAT, radio_range)
        seat.attach_sensor(
            "light",
            lambda room=room, desk=desk: room.seat_light(desk.desk_id),
        )
        network.add_mote(seat)
        ws_id: int | None = None
        if desk.machine_host is not None:
            machine = deployment.machines.get(desk.machine_host)
            ws = Mote(workstation_id, desk.position, MoteRole.WORKSTATION, radio_range)
            if machine is not None:
                ws.attach_sensor(
                    "temperature", lambda machine=machine: machine.temperature_c()
                )
            network.add_mote(ws)
            ws_id = workstation_id
            workstation_id += 1
        deployment.desk_motes[(room.room_id, desk.desk_id)] = (seat_id, ws_id)
        seat_id += 1
