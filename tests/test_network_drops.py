"""Message-drop paths in :mod:`repro.sensor.network`.

Every drop branch in ``SensorNetwork._hop`` gets pinned down: dead
senders (no energy spent, no transmission counted), retry exhaustion
(exactly ``MAX_RETRIES`` retransmissions, i.e. ``MAX_RETRIES + 1``
transmit attempts per hop), and the defensive dead-receiver branch.
Each drop leaves a ``net.drop`` trace record whose payload names the
reason, and the energy ledger stays exact: every mote's battery
satisfies ``capacity == spent() + remaining`` regardless of how the
message died.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import EnergyExhaustedError, SensorNetworkError
from repro.runtime import Simulator, Trace
from repro.runtime.faults import kill_mote
from repro.sensor import Mote, MoteRole, Position, SensorNetwork
from repro.sensor.network import HEADER_BYTES, MAX_RETRIES
from repro.sensor.radio import RadioModel


def _line_network(radio: RadioModel | None = None, trace: Trace | None = None):
    """base(0,0) — m1(0,10) — m2(0,20), range 12: a two-hop chain."""
    simulator = Simulator(seed=9)
    network = SensorNetwork(simulator, radio=radio, trace=trace or Trace())
    network.add_basestation(Position(0.0, 0.0), radio_range=12.0)
    network.add_mote(Mote(1, Position(0.0, 10.0), MoteRole.ROOM, radio_range=12.0))
    network.add_mote(Mote(2, Position(0.0, 20.0), MoteRole.ROOM, radio_range=12.0))
    network.rebuild_topology()
    return simulator, network


def _drop_records(network):
    return [record.payload for record in network.trace.category("net.drop")]


LOSSLESS = RadioModel(reliable_fraction=1.0)


class TestDeadSender:
    def test_dead_sender_drops_without_spending_energy(self):
        simulator, network = _line_network(LOSSLESS)
        kill_mote(network, 2)
        before = network.stats.snapshot()
        spent_before = network.mote(2).battery.spent()

        network.send(2, 0, payload_bytes=20)
        simulator.run_for(1.0)

        delta = network.stats.delta(before)
        assert delta.drops == 1
        # A corpse transmits nothing: no attempt, no bytes, no energy.
        assert delta.transmissions == 0 and delta.bytes_transmitted == 0
        assert network.mote(2).battery.spent() == spent_before
        assert _drop_records(network) == [{"reason": "dead-sender", "mote": 2}]

    def test_mid_path_relay_death_drops_at_the_relay_hop(self):
        """The first hop succeeds and is paid for; the relay's hop then
        finds the (freshly killed) relay as sender and drops there."""
        simulator, network = _line_network(LOSSLESS)
        delivered = []
        network.send(2, 0, payload_bytes=20, on_delivered=lambda p, t: delivered.append(t))
        # The message is in flight towards mote 1; kill mote 1 before
        # its forwarding hop executes.
        kill_mote(network, 1)
        simulator.run_for(1.0)
        assert delivered == []
        # Hop 2→1: one paid transmission; the receive fails against the
        # depleted battery and lands in the retry path, which exhausts
        # against the corpse.
        reasons = [record["reason"] for record in _drop_records(network)]
        assert reasons == ["retries"]
        assert network.stats.drops == 1

    def test_sender_battery_exhaustion_mid_message_drops_as_dead_sender(self):
        """``account_tx`` raising (battery dies on the preamble) is the
        second dead-sender branch: traced, counted, not transmitted."""
        simulator, network = _line_network(LOSSLESS)
        sender = network.mote(2)

        def broke(amount, category):
            raise EnergyExhaustedError("battery is depleted")

        sender.battery.spend = broke
        network.send(2, 0, payload_bytes=20)
        simulator.run_for(1.0)
        assert network.stats.transmissions == 0
        assert _drop_records(network) == [{"reason": "dead-sender", "mote": 2}]


class TestRetryExhaustion:
    def _edge_network(self):
        """Receiver at *exactly* radio range with floor_probability=0:
        delivery probability 0.0, so every attempt fails
        deterministically."""
        simulator = Simulator(seed=3)
        network = SensorNetwork(
            simulator,
            radio=RadioModel(reliable_fraction=0.5, floor_probability=0.0),
            trace=Trace(),
        )
        network.add_basestation(Position(0.0, 0.0), radio_range=10.0)
        network.add_mote(Mote(1, Position(0.0, 10.0), MoteRole.ROOM, radio_range=10.0))
        network.rebuild_topology()
        return simulator, network

    def test_max_retries_honored_exactly(self):
        simulator, network = self._edge_network()
        link = network.radio.link(network.mote(1), network.basestation)
        assert link is not None and link.delivery_probability == 0.0
        assert math.isinf(link.expected_transmissions)

        network.send_to_base(1, payload_bytes=16)
        simulator.run_for(1.0)

        # Original attempt + MAX_RETRIES retransmissions, then one drop.
        assert network.stats.transmissions == MAX_RETRIES + 1
        assert network.stats.deliveries == 0
        assert network.stats.drops == 1
        assert network.stats.bytes_transmitted == (MAX_RETRIES + 1) * (16 + HEADER_BYTES)
        assert _drop_records(network) == [{"reason": "retries", "from": 1, "to": 0}]

    def test_every_attempt_is_charged_to_the_sender(self):
        simulator, network = self._edge_network()
        sender = network.mote(1)
        network.send_to_base(1, payload_bytes=16)
        simulator.run_for(1.0)
        expected = (MAX_RETRIES + 1) * sender.energy.tx_cost(16 + HEADER_BYTES)
        assert sender.battery.spent("tx") == pytest.approx(expected)
        assert sender.battery.spent("rx") == 0.0
        assert sender.messages_sent == MAX_RETRIES + 1


class TestDeadReceiver:
    def test_receiver_battery_dying_on_rx_is_traced_as_dead_receiver(self):
        """The defensive branch: the receiver is alive when the message
        arrives but its battery dies on the receive charge."""
        simulator, network = _line_network(LOSSLESS)
        receiver = network.mote(1)

        def broke(payload_bytes):
            raise EnergyExhaustedError("battery is depleted")

        receiver.account_rx = broke
        network.send(2, 0, payload_bytes=20)
        simulator.run_for(1.0)
        assert network.stats.drops == 1
        assert network.stats.deliveries == 0
        assert _drop_records(network) == [{"reason": "dead-receiver", "mote": 1}]

    def test_receiver_killed_in_flight_exhausts_retries(self):
        """Without the mid-charge corner case, a receiver that dies while
        the message is airborne reads as persistent loss: the sender
        burns its retries and drops with reason "retries"."""
        simulator, network = _line_network(LOSSLESS)
        network.send(2, 0, payload_bytes=8)
        kill_mote(network, 1)  # the 2→1 hop's receiver, mid-flight
        simulator.run_for(1.0)
        reasons = [record["reason"] for record in _drop_records(network)]
        assert "retries" in reasons


class TestEnergyLedger:
    def test_successful_delivery_accounting_is_exact(self):
        simulator, network = _line_network(LOSSLESS)
        delivered = []
        network.send(2, 0, payload_bytes=24, on_delivered=lambda p, t: delivered.append(t))
        simulator.run_for(1.0)
        assert len(delivered) == 1
        assert network.stats.transmissions == 2  # one per hop
        assert network.stats.deliveries == 2
        assert network.stats.drops == 0
        total = 24 + HEADER_BYTES
        assert network.stats.bytes_transmitted == 2 * total

        source, relay, base = network.mote(2), network.mote(1), network.basestation
        model = source.energy
        assert source.battery.spent("tx") == pytest.approx(model.tx_cost(total))
        assert source.battery.spent("rx") == 0.0
        # The relay both receives and retransmits.
        assert relay.battery.spent("rx") == pytest.approx(model.rx_cost(total))
        assert relay.battery.spent("tx") == pytest.approx(model.tx_cost(total))
        assert base.battery.spent("rx") == pytest.approx(model.rx_cost(total))

    def test_capacity_invariant_holds_through_drops(self):
        simulator, network = _line_network(LOSSLESS)
        network.send(2, 0, payload_bytes=24)
        kill_mote(network, 1)
        network.send(2, 0, payload_bytes=24)  # exhausts retries at the corpse
        simulator.run_for(2.0)
        for mote in network.motes.values():
            battery = mote.battery
            # kill_mote force-drains, so remaining may be clamped at the
            # observable floor — the ledger still balances.
            assert battery.capacity_mj == pytest.approx(
                battery.spent() + battery.remaining_mj
            )

    def test_delivery_latency_is_hop_count_times_hop_latency(self):
        simulator, network = _line_network(LOSSLESS)
        delivered = []
        start = simulator.now
        network.send(2, 0, payload_bytes=4, on_delivered=lambda p, t: delivered.append(t))
        simulator.run_for(1.0)
        from repro.sensor.network import HOP_LATENCY

        assert delivered == [pytest.approx(start + 2 * HOP_LATENCY)]

    def test_disconnected_sender_raises_before_any_hop(self):
        simulator, network = _line_network(LOSSLESS)
        network.add_mote(Mote(7, Position(100.0, 100.0), MoteRole.ROOM, radio_range=5.0))
        network.rebuild_topology()
        before = network.stats.snapshot()
        with pytest.raises(SensorNetworkError, match="disconnected"):
            network.send_to_base(7, payload_bytes=4)
        assert network.stats.delta(before).transmissions == 0
