"""The ExecutionBackend layer, the sharded pool, and this PR's satellites.

Covers: backend routing behind the unchanged Session surface,
``connect(shards=N)``, ``StreamSource(partition_by=...)`` declarations,
the ``partition_safe`` analysis verdicts, pool mechanics (hash routing,
round-robin, table replication, fallback feed, watermark merging, stop),
queue-backed subscriptions, prepared-statement invalidation on close,
the batched stateful operators, and the compiled aggregate fold.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BatchBackend,
    DistributedBackend,
    ExecutionBackend,
    SessionClosedError,
    ShardedStreamBackend,
    SourceError,
    StreamBackend,
    StreamSource,
    TableSource,
    connect,
)
from repro.catalog import Catalog
from repro.data import DataType, Row, Schema, stable_hash
from repro.data.streams import CollectingConsumer, Punctuation, StreamElement
from repro.errors import CatalogError, QueryError
from repro.plan import PlanBuilder
from repro.sql.compiled import compile_accumulate
from repro.sql.expressions import AggregateCall, ColumnRef
from repro.stream.engine import StreamEngine
from repro.stream.partition import partition_safe
from repro.stream.sharded import ShardedStreamEngine
from repro.stream.operators import (
    AggregateOp,
    DistinctOp,
    LimitOp,
    OrderByOp,
)
from repro.sql.ast import OrderItem

READINGS = Schema.of(
    ("room", DataType.STRING),
    ("host", DataType.STRING),
    ("temp", DataType.FLOAT),
    ("load", DataType.FLOAT),
)

ROWS = [
    {"room": f"lab{i % 3}", "host": f"ws{i % 8}", "temp": 10.0 + i, "load": (i % 10) / 10.0}
    for i in range(40)
]


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream("Readings", READINGS, rate=10.0)
    return catalog


def _plan(sql: str, catalog: Catalog | None = None):
    return PlanBuilder(catalog or _catalog()).build_sql(sql)


# ----------------------------------------------------------------------
# The backend layer behind Session routing
# ----------------------------------------------------------------------
class TestBackendLayer:
    def test_session_installs_three_backend_peers(self):
        with connect() as session:
            for name, cls in (
                ("stream", StreamBackend),
                ("batch", BatchBackend),
                ("distributed", DistributedBackend),
            ):
                backend = session.backend(name)
                assert isinstance(backend, cls)
                assert isinstance(backend, ExecutionBackend)
                assert backend.name == name

    def test_sharded_session_swaps_the_stream_backend(self):
        with connect(shards=4) as session:
            backend = session.backend("stream")
            assert isinstance(backend, ShardedStreamBackend)
            assert backend.name == "stream"
            assert backend.shards == 4
            assert session.shards == 4
            assert isinstance(session.engine, ShardedStreamEngine)
        with connect() as session:
            assert session.shards == 1
            assert isinstance(session.engine, StreamEngine)

    def test_unknown_backend_name_raises(self):
        with connect() as session:
            with pytest.raises(QueryError, match="unknown engine"):
                session.backend("warp")

    def test_injected_engine_cannot_be_sharded(self):
        engine = StreamEngine(Catalog())
        with pytest.raises(QueryError, match="cannot be sharded"):
            connect(engine=engine, shards=2)

    def test_stream_backend_close_leaves_injected_engine_running(self):
        catalog = _catalog()
        engine = StreamEngine(catalog)
        outside = engine.execute(_plan("select r.host from Readings r", catalog))
        session = connect(catalog=catalog, engine=engine)
        session.close()
        assert outside in engine.running_queries  # not ours to stop

    def test_owned_engine_queries_stop_on_close(self):
        session = connect()
        session.attach(StreamSource("Readings", READINGS))
        session.query("select r.host from Readings r")
        engine = session.engine
        session.close()
        assert engine.running_queries == []

    def test_same_results_across_shard_counts_via_session(self):
        sql = (
            "select r.host, count(*) as n from Readings r "
            "[range 10 seconds slide 10 seconds] group by r.host"
        )

        def run(shards):
            session = connect(shards=shards) if shards > 1 else connect()
            session.attach(StreamSource("Readings", READINGS, partition_by="host"))
            cursor = session.query(sql)
            for index, row in enumerate(ROWS):
                session.push("Readings", row, float(index))
            session.punctuate(100.0)
            rows = sorted(repr(r.values) for r in cursor.results())
            session.close()
            return rows

        assert run(2) == run(1)
        assert run(4) == run(1)

    def test_batch_and_distributed_unaffected_by_sharding(self):
        with connect(shards=3, nodes=["pc1", "pc2"]) as session:
            session.attach(TableSource("T", READINGS, rows=ROWS[:10]))
            batch = session.query("select t.host from T t", engine="batch")
            assert len(batch.results()) == 10
            session.attach(StreamSource("Readings", READINGS))
            distributed = session.query(
                "select r.host from Readings r", placement="auto"
            )
            assert distributed.kind == "distributed"


# ----------------------------------------------------------------------
# Process workers: backend selection, degradation, stats
# ----------------------------------------------------------------------
class TestProcessWorkersSession:
    def _ra313(self, session):
        report = session.explain("select r.host from Readings r")
        return [d for d in report.diagnostics if d.code == "RA313"]

    def test_process_session_runs_and_reports_worker_stats(self):
        from repro.api.backends import ProcessShardBackend
        from repro.stream.procshard import ProcessShardEngine, usable_start_method

        if usable_start_method() is None:
            pytest.skip("no multiprocessing start method")
        with connect(shards=2, workers="process") as session:
            assert isinstance(session.backend("stream"), ProcessShardBackend)
            assert isinstance(session.engine, ProcessShardEngine)
            session.attach(StreamSource("Readings", READINGS, partition_by="host"))
            cursor = session.query("select r.host, r.temp from Readings r")
            for index, row in enumerate(ROWS):
                session.push("Readings", row, float(index))
            session.punctuate(100.0)
            assert len(cursor.results()) == len(ROWS)
            workers = session.stats()["workers"]
            assert workers["workers"] == 2
            assert workers["rows_shipped"] == len(ROWS)
            assert workers["batches_shipped"] >= 1
            assert workers["restarts"] == 0
            # A healthy process session carries no degradation notice.
            assert self._ra313(session) == []

    def test_no_start_method_degrades_with_ra313(self, monkeypatch):
        import repro.stream.procshard as procshard

        monkeypatch.setattr(procshard, "usable_start_method", lambda: None)
        with connect(shards=2, workers="process") as session:
            from repro.api.backends import ProcessShardBackend

            assert isinstance(session.backend("stream"), ShardedStreamBackend)
            assert not isinstance(session.backend("stream"), ProcessShardBackend)
            assert isinstance(session.engine, ShardedStreamEngine)
            session.attach(StreamSource("Readings", READINGS, partition_by="host"))
            diags = self._ra313(session)
            assert len(diags) == 1
            assert diags[0].severity == "info"
            # The degraded pool still executes queries normally.
            cursor = session.query("select r.host from Readings r")
            session.push("Readings", ROWS[0], 0.0)
            session.punctuate(10.0)
            assert len(cursor.results()) == 1

    def test_single_shard_process_request_degrades_with_ra313(self):
        with connect(shards=1, workers="process") as session:
            assert isinstance(session.backend("stream"), StreamBackend)
            session.attach(StreamSource("Readings", READINGS))
            diags = self._ra313(session)
            assert len(diags) == 1
            assert "shards" in diags[0].message

    def test_unknown_workers_mode_raises(self):
        with pytest.raises(QueryError, match="workers mode"):
            connect(shards=2, workers="threads")

    def test_inline_session_has_no_worker_stats(self):
        with connect(shards=2) as session:
            assert "workers" not in session.stats()

    def test_prepared_statement_falls_back_to_in_parent_engine(self):
        """Bound parameters live in the plan, not the SQL text, so the
        text is not shippable — the query runs on the fallback engine
        with identical semantics."""
        from repro.stream.procshard import usable_start_method

        if usable_start_method() is None:
            pytest.skip("no multiprocessing start method")
        with connect(shards=2, workers="process") as session:
            session.attach(StreamSource("Readings", READINGS, partition_by="host"))
            statement = session.prepare(
                "select r.host from Readings r where r.temp > :limit"
            )
            cursor = statement.execute(limit=30.0)
            assert not cursor._handle.partitioned
            for index, row in enumerate(ROWS):
                session.push("Readings", row, float(index))
            session.punctuate(100.0)
            expected = len([r for r in ROWS if r["temp"] > 30.0])
            assert len(cursor.results()) == expected


# ----------------------------------------------------------------------
# Partition-key declarations on sources
# ----------------------------------------------------------------------
class TestPartitionByDeclaration:
    def test_partition_by_reaches_the_pool_and_detaches(self):
        with connect(shards=2) as session:
            source = StreamSource("Readings", READINGS, partition_by="host")
            session.attach(source)
            assert session.engine.partition_key("Readings") == "host"
            session.detach("Readings")
            assert session.engine.partition_key("Readings") is None

    def test_partition_by_is_a_noop_on_unsharded_sessions(self):
        with connect() as session:
            session.attach(StreamSource("Readings", READINGS, partition_by="host"))
            session.push("Readings", ROWS[0], 1.0)  # still ingests fine

    def test_unknown_partition_column_fails_attach(self):
        with connect(shards=2) as session:
            with pytest.raises(SourceError, match="nope"):
                session.attach(
                    StreamSource("Readings", READINGS, partition_by="nope")
                )
            # Rollback left no half-registered source behind.
            assert "readings" not in [n.lower() for n in session.attached()]
            session.attach(StreamSource("Readings", READINGS, partition_by="host"))


# ----------------------------------------------------------------------
# The partition-safety analysis
# ----------------------------------------------------------------------
class TestPartitionSafe:
    KEYS = {"readings": "host"}

    def check(self, sql, keys=None):
        return partition_safe(_plan(sql), self.KEYS if keys is None else keys)

    def test_stateless_chain_is_safe_even_round_robin(self):
        verdict = self.check(
            "select r.host, r.temp from Readings r where r.temp > 5.0", keys={}
        )
        assert verdict.safe

    def test_keyed_window_aggregate_is_safe_and_tracks_key(self):
        verdict = self.check(
            "select r.host, count(*) as n from Readings r "
            "[range 10 seconds slide 10 seconds] group by r.host"
        )
        assert verdict.safe

    def test_aggregate_without_key_coverage_is_unsafe(self):
        verdict = self.check(
            "select r.room, count(*) as n from Readings r "
            "[range 10 seconds slide 10 seconds] group by r.room"
        )
        assert not verdict.safe
        assert "cover" in verdict.reason

    def test_global_aggregate_is_unsafe(self):
        assert not self.check(
            "select count(*) as n from Readings r [range 10 seconds slide 10 seconds]"
        ).safe

    def test_aggregate_over_round_robin_source_is_unsafe(self):
        assert not self.check(
            "select r.host, count(*) as n from Readings r "
            "[range 10 seconds slide 10 seconds] group by r.host",
            keys={},
        ).safe

    def test_order_by_and_limit_are_unsafe(self):
        assert "ORDER BY" in self.check(
            "select r.temp from Readings r order by r.temp"
        ).reason
        assert "LIMIT" in self.check(
            "select r.temp from Readings r limit 3"
        ).reason

    def test_rows_window_is_unsafe(self):
        assert "ROWS window" in self.check(
            "select r.temp from Readings r [rows 10]"
        ).reason

    def test_distinct_keeps_safety_only_with_the_key(self):
        assert self.check("select distinct r.host, r.room from Readings r").safe
        assert not self.check("select distinct r.room from Readings r").safe

    def test_projection_may_rename_the_key(self):
        verdict = self.check(
            "select r.host as machine, r.temp from Readings r where r.temp > 1.0"
        )
        assert verdict.safe and "machine" in verdict.key_columns

    def test_table_only_plan_is_unsafe_replicated(self):
        catalog = Catalog()
        catalog.register_table("T", READINGS, cardinality=10)
        verdict = partition_safe(
            _plan("select t.host from T t", catalog), {"t": "host"}
        )
        assert not verdict.safe
        assert "replicated" in verdict.reason


# ----------------------------------------------------------------------
# Pool mechanics
# ----------------------------------------------------------------------
class TestShardedEngine:
    def _pool(self, shards=3):
        catalog = _catalog()
        pool = ShardedStreamEngine(catalog, shards=shards)
        pool.set_partition_key("Readings", "host")
        return catalog, pool

    def test_stable_hash_is_deterministic_and_type_bridging(self):
        assert stable_hash("lab1") == stable_hash("lab1")
        assert stable_hash(3) == stable_hash(3.0)
        assert stable_hash(None) == stable_hash(None)
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash("a") != stable_hash("b")

    def test_same_key_routes_to_same_shard(self):
        catalog, pool = self._pool()
        handle = pool.execute(
            _plan("select r.host, r.temp from Readings r where r.temp > -1e9", catalog)
        )
        assert handle.partitioned
        for i in range(30):
            pool.push("Readings", {"room": "x", "host": "ws1", "temp": float(i), "load": 0.1}, float(i))
        owner = stable_hash("ws1") % pool.shard_count
        assert pool.engines[owner].elements_ingested == 30
        assert sum(e.elements_ingested for e in pool.engines) == 30
        assert pool.elements_ingested == 30

    def test_round_robin_spreads_without_a_key(self):
        catalog = _catalog()
        pool = ShardedStreamEngine(catalog, shards=3)
        pool.execute(_plan("select r.temp from Readings r", catalog))
        pool.push_many("Readings", ROWS[:30], [float(i) for i in range(30)])
        assert [e.elements_ingested for e in pool.engines] == [10, 10, 10]

    def test_invalid_partition_key_raises(self):
        _, pool = self._pool()
        with pytest.raises(CatalogError, match="not a column"):
            pool.set_partition_key("Readings", "bogus")

    def test_tables_replicate_to_every_engine(self):
        catalog, pool = self._pool()
        catalog.register_table("T", READINGS, cardinality=3)
        pool.load_table("T", ROWS[:3])
        for engine in pool.engines + [pool.fallback_engine]:
            assert len(engine.table_rows("T")) == 3
        assert len(pool.table_rows("T")) == 3
        pool.drop_table("T")
        for engine in pool.engines + [pool.fallback_engine]:
            assert engine.table_rows("T") == []

    def test_fallback_engine_fed_only_while_subscribed(self):
        catalog, pool = self._pool()
        pool.push("Readings", ROWS[0], 1.0)
        assert pool.fallback_engine.elements_ingested == 0  # nobody listening
        handle = pool.execute(
            _plan("select r.temp from Readings r order by r.temp", catalog)
        )
        assert not handle.partitioned
        pool.push("Readings", ROWS[1], 2.0)
        assert pool.fallback_engine.elements_ingested == 1
        handle.stop()
        pool.push("Readings", ROWS[2], 3.0)
        assert pool.fallback_engine.elements_ingested == 1

    def test_merged_sink_forwards_one_punctuation_per_watermark(self):
        catalog, pool = self._pool(shards=4)
        handle = pool.execute(
            _plan("select r.host from Readings r where r.load >= 0.0", catalog)
        )
        pool.push_many("Readings", ROWS[:8], [float(i) for i in range(8)])
        pool.punctuate(10.0)
        pool.punctuate(20.0)
        assert [p.watermark for p in handle.sink.punctuations] == [10.0, 20.0]

    def test_stop_unregisters_every_replica(self):
        catalog, pool = self._pool()
        handle = pool.execute(_plan("select r.temp from Readings r", catalog))
        assert pool.running_queries == [handle]
        handle.stop()
        handle.stop()  # idempotent
        assert pool.running_queries == []
        for engine in pool.engines:
            assert engine.running_queries == []

    def test_shard_stats_expose_partition_spread(self):
        catalog, pool = self._pool()
        handle = pool.execute(
            _plan("select r.host from Readings r where r.load >= 0.0", catalog)
        )
        pool.push_many(
            "Readings", ROWS[:24], [float(i) for i in range(24)]
        )
        stats = handle.shard_stats
        assert len(stats) == pool.shard_count
        total = sum(s.get("FusedOp.in", s.get("FilterOp.in", 0)) for s in stats)
        assert total == 24

    def test_mismatched_timestamp_arity_raises_before_routing(self):
        catalog, pool = self._pool()
        with pytest.raises(Exception, match="timestamps"):
            pool.push_many("Readings", ROWS[:3], [1.0, 2.0])

    def test_shard_count_must_be_positive(self):
        with pytest.raises(Exception, match="shard count"):
            ShardedStreamEngine(_catalog(), shards=0)


# ----------------------------------------------------------------------
# Satellite: queue-backed subscriptions
# ----------------------------------------------------------------------
class TestQueueSubscriptions:
    def _session(self, shards=1):
        session = connect(shards=shards) if shards > 1 else connect()
        session.attach(StreamSource("Readings", READINGS, partition_by="host"))
        return session

    def test_direct_mode_still_delivers_inline(self):
        with self._session() as session:
            cursor = session.query("select r.host from Readings r")
            seen = []
            subscription = cursor.subscribe(seen.append)
            session.push("Readings", ROWS[0], 1.0)
            assert [r["r.host"] for r in seen] == ["ws0"]
            assert subscription.pending == 0

    def test_queue_mode_defers_until_drain(self):
        with self._session() as session:
            cursor = session.query("select r.host from Readings r")
            seen = []
            subscription = cursor.subscribe(seen.append, mode="queue")
            session.push_many("Readings", ROWS[:5], 1.0)
            assert seen == [] and subscription.pending == 5
            assert subscription.drain(limit=2) == 2
            assert len(seen) == 2 and subscription.pending == 3
            assert cursor.drain() == 3
            assert len(seen) == 5

    def test_raising_callback_cannot_stall_the_emit_path(self):
        with self._session() as session:
            cursor = session.query("select r.host from Readings r")

            def explode(row):
                raise RuntimeError("slow consumer gone wrong")

            subscription = cursor.subscribe(explode, mode="queue")
            session.push_many("Readings", ROWS[:3], 1.0)  # emit path unaffected
            assert subscription.pending == 3
            with pytest.raises(RuntimeError):
                subscription.drain()
            # At-least-once: the failing item stays at the queue head
            # (nothing behind it is lost either); a recovered consumer
            # drains the full queue on retry.
            assert subscription.pending == 3
            seen = []
            subscription.callback = seen.append
            assert subscription.drain() == 3
            assert [r["r.host"] for r in seen] == ["ws0", "ws1", "ws2"]
            assert subscription.pending == 0

    def test_batched_emissions_reach_subscribers(self):
        # Regression: producers cache sink.push_batch at wiring time, so
        # the subscription tap must still observe batched pushes.
        with self._session() as session:
            cursor = session.query("select r.host from Readings r")
            seen = []
            cursor.subscribe(seen.append)
            session.push_many("Readings", ROWS[:7], 2.0)
            assert len(seen) == 7

    def test_sharded_merge_cursor_subscriptions(self):
        with self._session(shards=3) as session:
            cursor = session.query(
                "select r.host, count(*) as n from Readings r "
                "[range 10 seconds slide 10 seconds] group by r.host"
            )
            seen = []
            subscription = cursor.subscribe(seen.append, mode="queue", elements=True)
            session.push_many(
                "Readings", ROWS[:20], [float(i) for i in range(20)]
            )
            session.punctuate(50.0)
            assert seen == []
            cursor.drain()
            assert {e.row["r.host"] for e in seen} == {r["host"] for r in ROWS[:20]}

    def test_one_shot_cursor_queue_mode_drains_via_cursor(self):
        with connect() as session:
            session.attach(TableSource("T", READINGS, rows=ROWS[:6]))
            cursor = session.query("select t.host from T t")
            assert cursor.kind == "batch"
            seen = []
            subscription = cursor.subscribe(seen.append, mode="queue")
            assert seen == [] and subscription.pending == 6
            assert cursor.drain() == 6
            assert len(seen) == 6

    def test_unknown_mode_rejected(self):
        with self._session() as session:
            cursor = session.query("select r.host from Readings r")
            with pytest.raises(QueryError, match="unknown subscription mode"):
                cursor.subscribe(lambda row: None, mode="async")


# ----------------------------------------------------------------------
# Satellite: close() invalidates prepared statements
# ----------------------------------------------------------------------
class TestPreparedInvalidation:
    def test_stream_statement_invalidated_by_close(self):
        session = connect()
        session.attach(StreamSource("Readings", READINGS))
        statement = session.prepare(
            "select r.host from Readings r where r.temp > :limit"
        )
        assert not statement.closed
        session.close()
        assert statement.closed
        with pytest.raises(SessionClosedError, match="prepared statement"):
            statement.execute(limit=5.0)

    def test_batch_statement_invalidated_by_close(self):
        session = connect()
        session.attach(TableSource("T", READINGS, rows=ROWS[:4]))
        statement = session.prepare("select t.host from T t where t.temp > :x")
        assert statement.execute(x=0.0).results()
        session.close()
        with pytest.raises(SessionClosedError):
            statement.execute(x=0.0)


# ----------------------------------------------------------------------
# Satellite: batched stateful operators
# ----------------------------------------------------------------------
def _elements(count):
    schema = Schema.of(("x", DataType.INT))
    return [
        StreamElement(Row(schema, ((i * 7) % 5,)), float(i)) for i in range(count)
    ]


def _mixed_items(count):
    items = _elements(count)
    items.insert(count // 3, Punctuation(float(count // 3)))
    items.append(Punctuation(float(count + 1)))
    return items


def _ab(operator_factory, items):
    """Same items per-element vs batched; sinks must match exactly."""
    single_sink, batched_sink = CollectingConsumer(), CollectingConsumer()
    single, batched = operator_factory(single_sink), operator_factory(batched_sink)
    for item in items:
        single.push(item)
    batched.push_batch(items)
    assert batched_sink.elements == single_sink.elements
    assert batched_sink.punctuations == single_sink.punctuations
    assert batched.rows_in == single.rows_in
    assert batched.rows_out == single.rows_out


class TestBatchedStatefulOperators:
    def test_distinct_batched_identity(self):
        _ab(DistinctOp, _mixed_items(40))

    def test_limit_batched_identity(self):
        _ab(lambda sink: LimitOp(3, sink), _mixed_items(40))

    def test_orderby_batched_identity(self):
        schema = Schema.of(("x", DataType.INT))
        items = _mixed_items(30)
        _ab(
            lambda sink: OrderByOp([OrderItem(ColumnRef("x"), False)], sink, schema),
            items,
        )

    @pytest.mark.parametrize("windowed", [True, False])
    def test_aggregate_batched_identity(self, windowed):
        from repro.data.windows import WindowSpec

        schema = Schema.of(("x", DataType.INT))
        out = Schema.of(("x", DataType.INT), ("n", DataType.INT))
        window = WindowSpec.range(10.0, slide=10.0) if windowed else None

        def factory(sink):
            return AggregateOp(
                [(ColumnRef("x"), "x")],
                [(AggregateCall("COUNT", None), "n")],
                out,
                sink,
                window,
                schema,
            )

        _ab(factory, _mixed_items(60))


class TestCompiledAccumulate:
    SCHEMA = Schema.of(("k", DataType.STRING), ("a", DataType.FLOAT))

    def _elements(self):
        rows = [
            ("p", 1.0), ("q", None), ("p", 3.0), ("q", 2.0), ("p", None), ("r", -1.0),
        ]
        return [
            StreamElement(Row(self.SCHEMA, values, validate=False), float(i))
            for i, values in enumerate(rows)
        ]

    def _calls(self):
        return [
            AggregateCall("COUNT", None),
            AggregateCall("COUNT", ColumnRef("a")),
            AggregateCall("SUM", ColumnRef("a")),
            AggregateCall("AVG", ColumnRef("a")),
            AggregateCall("MIN", ColumnRef("a")),
            AggregateCall("MAX", ColumnRef("a")),
        ]

    def test_fold_matches_interpreted_accumulators(self):
        from repro.stream.operators import _Accumulator

        compiled = compile_accumulate([ColumnRef("k")], self._calls(), self.SCHEMA)
        assert compiled is not None
        fold, finalize = compiled
        groups: dict = {}
        fold(self._elements(), groups, float("-inf"), float("inf"))

        expected: dict = {}
        for element in self._elements():
            key = (element.row["k"],)
            accumulators = expected.setdefault(
                key, [_Accumulator(call) for call in self._calls()]
            )
            for accumulator in accumulators:
                accumulator.add(element.row)
        assert set(groups) == set(expected)
        for key, state in groups.items():
            assert finalize(state) == [a.result() for a in expected[key]]

    def test_fold_honours_window_bounds(self):
        compiled = compile_accumulate(
            [ColumnRef("k")], [AggregateCall("COUNT", None)], self.SCHEMA
        )
        fold, finalize = compiled
        groups: dict = {}
        fold(self._elements(), groups, 1.0, 4.0)  # (1, 4] -> timestamps 2,3,4
        assert sum(finalize(state)[0] for state in groups.values()) == 3

    def test_distinct_calls_fold_with_seen_sets(self):
        from repro.stream.operators import _Accumulator

        calls = [
            AggregateCall("COUNT", ColumnRef("a"), distinct=True),
            AggregateCall("SUM", ColumnRef("a"), distinct=True),
            AggregateCall("AVG", ColumnRef("a"), distinct=True),
            AggregateCall("MIN", ColumnRef("a"), distinct=True),
            AggregateCall("MAX", ColumnRef("a"), distinct=True),
            AggregateCall("COUNT", None),  # mixed with non-distinct calls
        ]
        compiled = compile_accumulate([ColumnRef("k")], calls, self.SCHEMA)
        assert compiled is not None
        fold, finalize = compiled
        # Duplicate values per group so the seen-sets actually dedup.
        elements = self._elements() + self._elements()
        groups: dict = {}
        fold(elements, groups, float("-inf"), float("inf"))
        expected: dict = {}
        for element in elements:
            key = (element.row["k"],)
            accumulators = expected.setdefault(
                key, [_Accumulator(call) for call in calls]
            )
            for accumulator in accumulators:
                accumulator.add(element.row)
        assert set(groups) == set(expected)
        for key, state in groups.items():
            assert finalize(state) == [a.result() for a in expected[key]]

    def test_count_distinct_star_falls_back(self):
        # COUNT(DISTINCT *) has no value to deduplicate; the fold
        # declines so the caller keeps interpreted accumulators.
        calls = [AggregateCall("COUNT", None, distinct=True)]
        assert compile_accumulate([ColumnRef("k")], calls, self.SCHEMA) is None

    def test_distinct_aggregate_pipeline_identity(self):
        sql = (
            "select r.host, count(distinct r.room) as rooms, "
            "sum(distinct r.load) as dload from Readings r "
            "[range 10 seconds slide 5 seconds] group by r.host"
        )
        from repro.stream.compiler import PlanCompiler

        def run(compiled_exprs):
            catalog = _catalog()
            sink = CollectingConsumer()
            compiled = PlanCompiler(compiled_exprs=compiled_exprs).compile(
                _plan(sql, catalog), sink
            )
            port = compiled.ports[0].consumer
            for index, row in enumerate(ROWS):
                port.push(
                    StreamElement(Row.from_mapping(READINGS, dict(row)), float(index))
                )
            port.push(Punctuation(1000.0))
            return [(e.timestamp, e.row.values) for e in sink.elements]

        assert run(True) == run(False)

    def test_empty_groups_no_emission_semantics(self):
        compiled = compile_accumulate(
            [], [AggregateCall("SUM", ColumnRef("a"))], self.SCHEMA
        )
        fold, finalize = compiled
        groups: dict = {}
        fold(
            [StreamElement(Row(self.SCHEMA, ("p", None), validate=False), 1.0)],
            groups,
            float("-inf"),
            float("inf"),
        )
        (state,) = groups.values()
        assert finalize(state) == [None]  # SUM over only-NULL input is NULL

    def test_compiled_vs_interpreted_pipeline_identity(self):
        sql = (
            "select r.host, count(*) as n, sum(r.temp) as total, "
            "min(r.load) as lo from Readings r "
            "[range 10 seconds slide 5 seconds] group by r.host"
        )
        from repro.stream.compiler import PlanCompiler

        def run(compiled_exprs):
            catalog = _catalog()
            sink = CollectingConsumer()
            compiled = PlanCompiler(compiled_exprs=compiled_exprs).compile(
                _plan(sql, catalog), sink
            )
            port = compiled.ports[0].consumer
            for index, row in enumerate(ROWS):
                mapping = dict(row)
                if index % 7 == 0:
                    mapping["temp"] = None
                port.push(
                    StreamElement(Row.from_mapping(READINGS, mapping), float(index))
                )
            port.push(Punctuation(1000.0))
            return [(e.timestamp, e.row.values) for e in sink.elements]

        assert run(True) == run(False)
