"""The diagnostics framework: stable ``RA###`` codes over every verdict.

Every static verdict the engine produces — type errors, unbounded-state
proofs, progress/punctuation soundness, partition-safety fallbacks,
sharing declines, federated partitioning decisions, engine-invariant
lint findings — is a :class:`Diagnostic` with a stable code from
:data:`CODES`. Codes are API: tests pin them, ``session.explain``
surfaces them, and tooling greps for them, so a code is never renumbered
or reused once released.

Code ranges:

* ``RA0xx`` — typed-plan inference (:mod:`repro.analysis.typing`)
* ``RA1xx`` — unbounded-state detection (:mod:`repro.analysis.bounds`)
* ``RA2xx`` — progress/punctuation soundness (:mod:`repro.analysis.progress`)
* ``RA3xx`` — partition-safety verdicts (:mod:`repro.stream.partition`)
* ``RA4xx`` — shared-subplan eligibility (:mod:`repro.stream.multiplex`)
* ``RA5xx`` — federated partitioning decisions
* ``RA9xx`` — engine-invariant linter (:mod:`repro.analysis.linter`)

Severities: ``error`` (the plan will fail or never emit — strict mode
turns these into :class:`~repro.errors.QueryError`), ``warning`` (runs,
but state or progress depends on runtime conditions the analysis cannot
bound), ``info`` (an explanation of a decision, not a defect).
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITIES = (ERROR, WARNING, INFO)

#: Stable code -> one-line title. The registry is closed: emitting a
#: code absent from this table is a bug (``diag`` raises), and removing
#: or renumbering an entry is a compatibility break.
CODES: dict[str, str] = {
    # -- RA0xx: typed-plan inference -----------------------------------
    "RA001": "ill-typed expression",
    "RA002": "predicate is not boolean",
    "RA003": "invalid aggregate argument type",
    "RA004": "ill-typed projection or group key",
    "RA005": "recursive CTE column type mismatch",
    "RA006": "ORDER BY key is not orderable",
    # -- RA1xx: unbounded-state detection ------------------------------
    "RA101": "join buffers an unbounded window over an infinite stream",
    "RA102": "DISTINCT state grows with distinct-row count",
    "RA103": "running-mode aggregate state never clears",
    "RA104": "UNBOUNDED window aggregate over an infinite stream",
    # -- RA2xx: progress / punctuation soundness -----------------------
    "RA200": "blocking operator unblocked by window close",
    "RA201": "blocking operator unblocked by punctuation",
    "RA203": "recursive fixpoint over an infinite stream",
    # -- RA3xx: partition-safety verdicts ------------------------------
    "RA300": "plan is partition-aligned",
    "RA301": "ORDER BY needs a global total order",
    "RA302": "LIMIT budgets rows globally",
    "RA303": "ROWS window counts global arrivals",
    "RA304": "plan reads only replicated tables",
    "RA305": "plan reads no partitioned stream",
    "RA306": "DISTINCT without the partition key",
    "RA307": "aggregate over replicated tables",
    "RA308": "aggregate input does not carry the partition key",
    "RA309": "GROUP BY keys do not cover the partition key",
    "RA310": "join predicate does not align partition keys",
    "RA311": "partition key is not a column of the source",
    "RA312": "operator not recognized as partition-safe",
    "RA313": "process workers unavailable; the pool runs in-process",
    # -- RA32x: exchange (mid-plan repartitioning) decisions -----------
    "RA320": "join inputs hash-shuffled on the equi-key",
    "RA321": "aggregate split into per-shard partials merged by shuffle",
    "RA322": "DISTINCT rows shuffled by row hash",
    "RA323": "table side broadcast to every shard",
    "RA324": "no exchange strategy applies; plan runs on the fallback engine",
    "RA325": "unkeyed stream ingested round-robin before the shuffle",
    # -- RA4xx: shared-subplan eligibility -----------------------------
    "RA400": "plan is shareable",
    "RA401": "OUTPUT TO DISPLAY must fire once per query",
    "RA402": "remote feeds are delivered per engine, not per chain",
    "RA403": "recursive CTE references are never shared",
    "RA404": "stored-table scans are replayed per query",
    "RA405": "plan has no structural fingerprint",
    # -- RA5xx: federated partitioning decisions -----------------------
    "RA500": "no sensor-executable fragments; plan runs whole on the stream engine",
    "RA501": "fragment pushed in-network",
    "RA502": "sensor scan collected raw to the basestation",
    "RA503": "residual runs on the stream engine",
    # -- RA9xx: engine-invariant linter --------------------------------
    "RA901": "state_snapshot/state_restore must be defined in pairs",
    "RA902": "overridden push_batch must handle punctuation",
    "RA903": "import crosses a layering boundary",
    "RA904": "worker boundary must stay pickle-safe",
}


class PlanAnalysisWarning(UserWarning):
    """Python warning category carrying plan-analysis diagnostics
    (``connect(analysis="warn")`` routes error-severity findings here
    instead of raising)."""


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding with a stable code.

    Attributes:
        code: Stable ``RA###`` identifier from :data:`CODES`.
        severity: ``"error"``, ``"warning"`` or ``"info"``.
        message: Human-readable explanation specific to this finding.
        operator: The plan node (``describe()``) or source location the
            finding anchors to; empty when plan-wide.
        hint: Optional remediation hint.
    """

    code: str
    severity: str
    message: str
    operator: str = ""
    hint: str = ""

    def render(self) -> str:
        where = f" at {self.operator}" if self.operator else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"[{self.code}] {self.severity}: {self.message}{where}{hint}"


def diag(
    code: str,
    severity: str,
    message: str,
    *,
    operator: str = "",
    hint: str = "",
) -> Diagnostic:
    """Build a :class:`Diagnostic`, validating against the registry."""
    if code not in CODES:
        raise ValueError(f"unregistered diagnostic code {code!r}")
    if severity not in _SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")
    return Diagnostic(code, severity, message, operator, hint)


@dataclass(frozen=True)
class AnalysisReport:
    """The verdict of one analysis run over one plan.

    Cached alongside the compiled plan (see
    :class:`~repro.stream.multiplex.CachedStatement`), so a warm
    admission never re-analyzes. Immutable: reports are shared across
    cache hits exactly like the plans they describe.
    """

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, diagnostics) -> "AnalysisReport":
        return cls(tuple(diagnostics))

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == INFO)

    def codes(self) -> tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def has_code(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def __getitem__(self, code: str) -> Diagnostic:
        for d in self.diagnostics:
            if d.code == code:
                return d
        raise KeyError(code)

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)
