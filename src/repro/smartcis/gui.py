"""The SmartCIS GUI, rendered as deterministic text.

Paper Figure 2 shows "building layout, open and closed (shaded with
dashed lines) labs, free and unavailable machines, and a path to and
details about the nearest machine with Fedora Linux". This renderer
regenerates the same scene as ASCII: rooms as boxes (closed labs hatched
with dashes), desks as ``F``/``U`` markers (free / unavailable), the
visitor as ``@``, the suggested route as ``*`` dots, plus a details
panel for the chosen machine and the live query/partition information
the demo projects.

Output is deterministic for a given application state, so the Figure 2
bench can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.building.model import Room, RoomKind
from repro.building.routing import Route
from repro.sensor.mote import Position

#: Character cell size in feet (x, y). The Moore layout is ~400×120 ft;
#: at 5×6 ft per cell the map is ~80×20 characters.
CELL_X = 5.0
CELL_Y = 6.0


@dataclass
class GuiScene:
    """Everything the GUI draws, collected from the application."""

    width_ft: float
    height_ft: float
    rooms: list[Room]
    room_open: dict[str, bool]
    seat_free: dict[tuple[str, str], bool]
    visitor_position: Position | None = None
    route_positions: list[Position] | None = None
    details: list[str] | None = None


class AsciiMap:
    """A character canvas addressed in building coordinates."""

    def __init__(self, width_ft: float, height_ft: float):
        self.columns = int(width_ft / CELL_X) + 2
        self.rows = int(height_ft / CELL_Y) + 2
        self._grid = [[" "] * self.columns for _ in range(self.rows)]

    def cell(self, position: Position) -> tuple[int, int]:
        column = min(max(int(position.x / CELL_X), 0), self.columns - 1)
        # y grows upward in building coordinates; rows grow downward.
        row = min(max(self.rows - 1 - int(position.y / CELL_Y), 0), self.rows - 1)
        return row, column

    def put(self, position: Position, char: str, overwrite: bool = True) -> None:
        row, column = self.cell(position)
        if overwrite or self._grid[row][column] == " ":
            self._grid[row][column] = char

    def put_if_space(self, position: Position, char: str) -> None:
        self.put(position, char, overwrite=False)

    def box(self, origin: Position, width: float, height: float, fill: str | None) -> None:
        top_left = Position(origin.x, origin.y + height)
        bottom_right = Position(origin.x + width, origin.y)
        r0, c0 = self.cell(top_left)
        r1, c1 = self.cell(bottom_right)
        for column in range(c0, c1 + 1):
            self._grid[r0][column] = "-"
            self._grid[r1][column] = "-"
        for row in range(r0, r1 + 1):
            self._grid[row][c0] = "|"
            self._grid[row][c1] = "|"
        self._grid[r0][c0] = self._grid[r0][c1] = "+"
        self._grid[r1][c0] = self._grid[r1][c1] = "+"
        if fill:
            for row in range(r0 + 1, r1):
                for column in range(c0 + 1, c1):
                    self._grid[row][column] = fill

    def label(self, position: Position, text: str) -> None:
        row, column = self.cell(position)
        for offset, char in enumerate(text):
            if column + offset < self.columns:
                self._grid[row][column + offset] = char

    def render(self) -> str:
        return "\n".join("".join(row).rstrip() for row in self._grid)


def render_scene(scene: GuiScene) -> str:
    """Draw the scene: map, then the details panel."""
    canvas = AsciiMap(scene.width_ft, scene.height_ft)

    for room in scene.rooms:
        is_open = scene.room_open.get(room.room_id, room.is_open)
        hatch = None if is_open else "-"  # paper: closed labs shaded with dashes
        canvas.box(room.origin, room.width, room.height, hatch)
        label_pos = Position(room.origin.x + 4.0, room.origin.y + room.height - 8.0)
        canvas.label(label_pos, room.room_id[: max(int(room.width / CELL_X) - 2, 4)])

    # Desk markers: F free, U unavailable (busy seat or closed room).
    for room in scene.rooms:
        for desk in room.desks.values():
            free = scene.seat_free.get((room.room_id, desk.desk_id), False)
            free = free and scene.room_open.get(room.room_id, False)
            canvas.put(desk.position, "F" if free else "U")

    if scene.route_positions:
        for position in scene.route_positions:
            canvas.put_if_space(position, "*")

    if scene.visitor_position is not None:
        canvas.put(scene.visitor_position, "@")

    out = [canvas.render()]
    if scene.details:
        out.append("")
        out.append("+-- details " + "-" * 46)
        for line in scene.details:
            out.append("| " + line)
        out.append("+" + "-" * 58)
    return "\n".join(out)


def interpolate_route(route_points: list[Position], step_ft: float = 8.0) -> list[Position]:
    """Densify a polyline so the route paints as a continuous dotted path."""
    if not route_points:
        return []
    out = [route_points[0]]
    for start, end in zip(route_points, route_points[1:]):
        distance = start.distance_to(end)
        steps = max(int(distance / step_ft), 1)
        for i in range(1, steps + 1):
            fraction = i / steps
            out.append(
                Position(
                    start.x + fraction * (end.x - start.x),
                    start.y + fraction * (end.y - start.y),
                )
            )
    return out


def scene_from_app(app, visitor: str | None = None, route: Route | None = None,
                   details: list[str] | None = None) -> GuiScene:
    """Collect a :class:`GuiScene` from a running SmartCIS application."""
    building = app.building
    rooms = [r for r in building.rooms.values() if r.kind is not RoomKind.HALLWAY]
    room_open = {room_id: app.state.room_is_open(room_id) for room_id in building.rooms}
    seat_free = {
        key: app.state.seat_is_free(*key) for key in app.state.seat_status
    }
    visitor_position = None
    if visitor is not None and visitor in app.occupants:
        visitor_position = app.occupants[visitor].position
    route_positions = None
    if route is not None:
        points = [app.deployment.graph.point(p).position for p in route.points]
        route_positions = interpolate_route(points)
    extent_x = max(r.origin.x + r.width for r in rooms) + 20
    extent_y = max(r.origin.y + r.height for r in rooms) + 10
    return GuiScene(
        width_ft=extent_x,
        height_ft=extent_y,
        rooms=rooms,
        room_open=room_open,
        seat_free=seat_free,
        visitor_position=visitor_position,
        route_positions=route_positions,
        details=details,
    )


def render_app(app, visitor: str | None = None, route: Route | None = None,
               details: list[str] | None = None) -> str:
    """One-call Figure-2 rendering of a running application."""
    return render_scene(scene_from_app(app, visitor, route, details))
