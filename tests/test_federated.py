"""Tests for the federated optimizer, cost normalisation and execution."""

import pytest

from repro.core import (
    FederatedOptimizer,
    naive_cost,
    normalize_sensor_cost,
    normalize_stream_cost,
)
from repro.core.cost import RADIO_WEIGHT
from repro.catalog import NetworkInfo
from repro.errors import OptimizerError
from repro.plan.logical import RemoteSource, Scan
from repro.sensor.optimizer import SensorCost
from repro.stream.optimizer import StreamCost


@pytest.fixture
def fed(catalog, line_network):
    return FederatedOptimizer(catalog, line_network)


class TestNormalization:
    def test_sensor_cost_conversion(self):
        network = NetworkInfo(diameter=4, radio_seconds_per_message=0.02)
        cost = SensorCost(messages_per_epoch=10, bytes_per_epoch=100, epoch_seconds=10)
        normalized = normalize_sensor_cost(cost, network)
        assert normalized.latency_seconds == pytest.approx(4 * 0.02)
        assert normalized.resource_rate == pytest.approx(RADIO_WEIGHT * 1.0 * 0.02)

    def test_stream_cost_conversion(self):
        network = NetworkInfo()
        cost = StreamCost(latency=0.01, rows_per_second=1000, state_rows=10)
        normalized = normalize_stream_cost(cost, network)
        assert normalized.latency_seconds == 0.01
        assert normalized.resource_rate == pytest.approx(1000 * 2e-6)

    def test_radio_seconds_priced_far_above_cpu(self):
        """One message per second must cost more than thousands of rows of
        CPU — otherwise the optimizer would never bother pushing."""
        network = NetworkInfo()
        radio = normalize_sensor_cost(SensorCost(1, 10, 1.0), network)
        cpu = normalize_stream_cost(StreamCost(0.0, 1000, 0), network)
        assert radio.resource_rate > cpu.resource_rate

    def test_plus_and_ordering(self):
        from repro.core import NormalizedCost

        a = NormalizedCost(0.1, 0.2)
        b = NormalizedCost(0.3, 0.4)
        total = a.plus(b)
        assert total.latency_seconds == pytest.approx(0.4)
        assert a < b

    def test_naive_cost_mixes_units(self):
        sensor = SensorCost(10, 100, 10)
        stream = StreamCost(0.5, 100, 0)
        assert naive_cost([sensor], stream) == pytest.approx(10.5)


class TestPartitioning:
    def test_pure_stream_query_single_alternative(self, fed, builder):
        plan = builder.build_sql("select p.id from Person p")
        federated = fed.optimize(plan)
        assert federated.pushed == []
        assert len(federated.alternatives) == 1

    def test_sensor_filter_offered_both_ways(self, fed, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status = 'open'"
        )
        federated = fed.optimize(plan)
        assert len(federated.alternatives) == 2
        kinds = sorted(
            tuple(f.deployment.kind for f in alt.pushed)
            for alt in federated.alternatives
        )
        assert kinds == [("collection",), ("collection",)]  # raw vs filtered push

    def test_chosen_is_minimum_cost(self, fed, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, SeatSensors ss, Machines m "
            "where sa.room = ss.room and ss.room = m.room and sa.status = 'open'"
        )
        federated = fed.optimize(plan)
        best = min(a.normalized.total for a in federated.alternatives)
        assert federated.cost.total == pytest.approx(best)

    def test_pushdown_wins_for_selective_sensor_join(self, fed, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, SeatSensors ss "
            "where sa.room = ss.room and sa.status = 'open' and ss.status = 'free'"
        )
        federated = fed.optimize(plan)
        assert [f.deployment.kind for f in federated.pushed] == ["join"]

    def test_unpushed_sensor_scans_become_raw_collections(self, fed, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, Person p where sa.room = p.room"
        )
        federated = fed.optimize(plan)
        # The sensor scan cannot be pushed with Person; it must still be
        # pulled out of the network as a raw collection.
        assert len(federated.pushed) == 1
        assert federated.pushed[0].deployment.kind == "collection"
        remotes = [
            n for n in federated.stream_plan.walk() if isinstance(n, RemoteSource)
        ]
        assert len(remotes) == 1

    def test_pushed_join_feed_carries_partition_key(self, fed, builder):
        """The RemoteSource standing in for an in-network join advertises
        the join-site equi-key, so the sharded backend can route its feed
        by hash instead of round-robin (and keep keyed residuals safe)."""
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, SeatSensors ss "
            "where sa.room = ss.room and sa.status = 'open' and ss.status = 'free'"
        )
        federated = fed.optimize(plan)
        assert [f.deployment.kind for f in federated.pushed] == ["join"]
        remotes = [
            n for n in federated.stream_plan.walk() if isinstance(n, RemoteSource)
        ]
        assert len(remotes) == 1
        assert remotes[0].partition_by == ("sa.room",)

    def test_raw_collection_feed_is_unkeyed(self, fed, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, Person p where sa.room = p.room"
        )
        federated = fed.optimize(plan)
        remotes = [
            n for n in federated.stream_plan.walk() if isinstance(n, RemoteSource)
        ]
        assert len(remotes) == 1
        assert remotes[0].partition_by == ()

    def test_no_sensor_scans_left_in_stream_plan(self, fed, builder):
        from repro.catalog import EngineLocation

        plan = builder.build_sql(
            "select sa.room from AreaSensors sa, SeatSensors ss where sa.room = ss.room"
        )
        federated = fed.optimize(plan)
        for node in federated.stream_plan.walk():
            if isinstance(node, Scan):
                assert node.entry.location is not EngineLocation.SENSOR

    def test_explain_mentions_engines_and_alternatives(self, fed, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status = 'open'"
        )
        text = fed.optimize(plan).explain()
        assert "[sensor]" in text and "[stream]" in text
        assert "alternatives considered" in text

    def test_remote_source_rate_estimated(self, fed, builder):
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status = 'open'"
        )
        federated = fed.optimize(plan)
        pushed = federated.pushed[0]
        # 3 motes / 10 s period × selectivity (1/2 for status='open').
        assert 0 < pushed.result_rate <= 0.3

    def test_ablation_switch_changes_objective(self, catalog, line_network, builder):
        normalised = FederatedOptimizer(catalog, line_network, use_normalization=True)
        naive = FederatedOptimizer(catalog, line_network, use_normalization=False)
        plan = builder.build_sql(
            "select sa.room from AreaSensors sa where sa.status = 'open'"
        )
        a = normalised.optimize(plan)
        b = naive.optimize(plan)
        # Same alternatives enumerated either way.
        assert len(a.alternatives) == len(b.alternatives)


class TestFigure1:
    def test_paper_query_partitions_view_in_network(self, catalog, fed, builder):
        from repro.sql import parse

        view = parse(
            "create view OpenMachineInfo as (select ss.room, ss.desk "
            "from AreaSensors sa, SeatSensors ss where sa.room = ss.room "
            "^ sa.status = 'open' ^ ss.status = 'free')"
        )
        catalog.register_view(view.name, view.query)
        plan = builder.build_sql(
            "select p.id, O.room, O.desk, r.path "
            "from Person p, Route r, OpenMachineInfo O, Machines m "
            "where O.room = m.room ^ O.desk = m.desk ^ m.software LIKE p.needed ^ "
            "r.start = p.room ^ r.end = O.room order by p.id"
        )
        federated = fed.optimize(plan)
        # The view's sensor join goes in-network; Person/Route/Machines stay.
        assert [f.deployment.kind for f in federated.pushed] == ["join"]
        assert {"AreaSensors", "SeatSensors"} == set(
            federated.pushed[0].deployment.relations
        )
        stream_scans = {
            n.entry.name
            for n in federated.stream_plan.walk()
            if isinstance(n, Scan)
        }
        assert stream_scans == {"Person", "Route", "Machines"}
        # Per-pair decisions were made.
        assert federated.pushed[0].deployment.decisions
